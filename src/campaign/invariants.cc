#include "invariants.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "baselines/simple_rules.h"
#include "cluster/hdbscan.h"
#include "collector/collector.h"
#include "core/pipeline_cache.h"
#include "core/pruner.h"
#include "distance/trace_distance.h"
#include "durable/durable_log.h"
#include "online/durable_state.h"
#include "online/service.h"
#include "sim/simulator.h"
#include "storage/trace_store.h"
#include "synth/infer.h"
#include "trace/trace_json.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/simd.h"

namespace sleuth::campaign {

namespace {

InvariantResult
fail(std::string why)
{
    return {false, std::move(why)};
}

InvariantResult
pass()
{
    return {true, ""};
}

std::string
joinServices(const std::vector<std::string> &xs)
{
    std::string out;
    for (const std::string &x : xs) {
        if (!out.empty())
            out += ",";
        out += x;
    }
    return out.empty() ? "<none>" : out;
}

/**
 * Full structural comparison of two pipeline results; returns a
 * human-readable description of the first difference, or empty.
 */
std::string
diffResults(const core::PipelineResult &a,
            const core::PipelineResult &b)
{
    std::ostringstream os;
    if (a.perTrace.size() != b.perTrace.size()) {
        os << "perTrace size " << a.perTrace.size() << " vs "
           << b.perTrace.size();
        return os.str();
    }
    if (a.clusterLabels != b.clusterLabels)
        return "cluster labels differ";
    if (a.numClusters != b.numClusters) {
        os << "numClusters " << a.numClusters << " vs "
           << b.numClusters;
        return os.str();
    }
    if (a.rcaInvocations != b.rcaInvocations) {
        os << "rcaInvocations " << a.rcaInvocations << " vs "
           << b.rcaInvocations;
        return os.str();
    }
    if (a.distanceEvaluations != b.distanceEvaluations) {
        os << "distanceEvaluations " << a.distanceEvaluations
           << " vs " << b.distanceEvaluations;
        return os.str();
    }
    if (a.skippedTraces != b.skippedTraces) {
        os << "skippedTraces " << a.skippedTraces << " vs "
           << b.skippedTraces;
        return os.str();
    }
    for (size_t i = 0; i < a.perTrace.size(); ++i) {
        const core::RcaResult &x = a.perTrace[i];
        const core::RcaResult &y = b.perTrace[i];
        if (x.services != y.services) {
            os << "trace " << i << " services ["
               << joinServices(x.services) << "] vs ["
               << joinServices(y.services) << "]";
            return os.str();
        }
        if (x.pods != y.pods || x.nodes != y.nodes ||
            x.containers != y.containers) {
            os << "trace " << i << " scope sets differ";
            return os.str();
        }
        if (x.iterations != y.iterations ||
            x.resolved != y.resolved || x.error != y.error) {
            os << "trace " << i << " verdict metadata differs";
            return os.str();
        }
    }
    return "";
}

/** Field-by-field trace equality (serialization round trips). */
std::string
diffTraces(const trace::Trace &a, const trace::Trace &b)
{
    std::ostringstream os;
    if (a.traceId != b.traceId) {
        os << "traceId " << a.traceId << " vs " << b.traceId;
        return os.str();
    }
    if (a.spans.size() != b.spans.size()) {
        os << "span count " << a.spans.size() << " vs "
           << b.spans.size();
        return os.str();
    }
    for (size_t i = 0; i < a.spans.size(); ++i) {
        const trace::Span &x = a.spans[i];
        const trace::Span &y = b.spans[i];
        if (x.spanId != y.spanId || x.parentSpanId != y.parentSpanId ||
            x.service != y.service || x.name != y.name ||
            x.kind != y.kind || x.startUs != y.startUs ||
            x.endUs != y.endUs || x.status != y.status ||
            x.container != y.container || x.pod != y.pod ||
            x.node != y.node) {
            os << "span " << i << " of trace " << a.traceId
               << " differs";
            return os.str();
        }
    }
    return "";
}

/** Fraction of storm traces whose verdict hits the ground truth. */
double
hitRate(const core::PipelineResult &res,
        const std::vector<std::set<std::string>> &truth)
{
    if (truth.empty())
        return 1.0;
    size_t hits = 0;
    for (size_t i = 0; i < truth.size(); ++i) {
        for (const std::string &svc : res.perTrace[i].services) {
            if (truth[i].count(svc)) {
                ++hits;
                break;
            }
        }
    }
    return static_cast<double>(hits) /
           static_cast<double>(truth.size());
}

/**
 * Accuracy floor per application tier, calibrated at roughly half the
 * minimum hit rate observed over 1000+ randomized easy scenarios. The
 * floors catch collapses (a model that stopped locating anything), not
 * regressions of a few points — those are the perf suite's job. The
 * 12-RPC tier gets no floor (negative): apps that small cannot be
 * trained reliably with campaign-sized budgets, so it exercises the
 * metamorphic and robustness invariants only.
 */
double
tierFloor(int num_rpcs)
{
    if (num_rpcs < 16)
        return -1.0;
    if (num_rpcs < 24)
        return 0.15;
    if (num_rpcs < 32)
        return 0.20;
    return 0.25;
}

// ---------------------------------------------------------------------
// Invariants.
// ---------------------------------------------------------------------

InvariantResult
checkThreadDeterminism(const ScenarioRun &run, const CheckContext &)
{
    core::PipelineConfig cfg = run.scenario.pipelineConfig();
    cfg.numThreads = 1;
    core::PipelineResult base = run.analyze(cfg);
    for (size_t threads : {size_t{2}, size_t{8}}) {
        cfg.numThreads = threads;
        std::string diff = diffResults(base, run.analyze(cfg));
        if (!diff.empty())
            return fail("results diverge at numThreads=" +
                        std::to_string(threads) + ": " + diff);
    }
    return pass();
}

/**
 * The pipeline's pairwise distances for a storm, computed exactly as
 * the pipeline computes them (span-set encoding under the config's
 * distance options, weighted Jaccard).
 */
std::vector<std::vector<double>>
pairwiseDistances(const ScenarioRun &run,
                  const core::PipelineConfig &cfg)
{
    const size_t n = run.traces.size();
    std::vector<distance::WeightedSpanSet> sets(n);
    for (size_t i = 0; i < n; ++i) {
        trace::TraceGraph graph;
        std::string err;
        if (trace::TraceGraph::tryBuild(run.traces[i], &graph, &err))
            sets[i] = distance::encodeSpanSet(run.traces[i], graph,
                                              cfg.distanceOpts);
    }
    std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j)
            d[i][j] = d[j][i] =
                distance::jaccardDistance(sets[i], sets[j]);
    return d;
}

/**
 * True when HDBSCAN's tie-breaking may legally depend on input order:
 * the mutual-reachability edge multiset has (near-)duplicate weights,
 * so MST construction — and with it the condensed hierarchy — is not
 * unique. Incident storms hit this constantly (repeated flows produce
 * identical span sets, i.e. distance-0 pairs), and the implementation
 * breaks such ties by batch index, which is an accepted and documented
 * order sensitivity — not a bug the campaign should flag.
 */
bool
hdbscanHasTies(const std::vector<std::vector<double>> &d,
               const cluster::HdbscanParams &params)
{
    const size_t n = d.size();
    if (n < 2)
        return false;
    // Core distances, replicated from cluster::hdbscan().
    size_t k = std::max<size_t>(1, params.minSamples);
    std::vector<double> core(n, 0.0);
    std::vector<double> row(n - 1);
    for (size_t i = 0; i < n; ++i) {
        size_t w = 0;
        for (size_t j = 0; j < n; ++j)
            if (j != i)
                row[w++] = d[i][j];
        size_t kk = std::min(k, w) - 1;
        std::nth_element(row.begin(),
                         row.begin() + static_cast<ptrdiff_t>(kk),
                         row.begin() + static_cast<ptrdiff_t>(w));
        core[i] = row[kk];
    }
    std::vector<double> edges;
    edges.reserve(n * (n - 1) / 2);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i + 1; j < n; ++j)
            edges.push_back(std::max({core[i], core[j], d[i][j]}));
    std::sort(edges.begin(), edges.end());
    for (size_t i = 1; i < edges.size(); ++i)
        if (edges[i] - edges[i - 1] < 1e-9)
            return true;
    return false;
}

InvariantResult
checkPermutationInvariance(const ScenarioRun &run,
                           const CheckContext &)
{
    const size_t n = run.traces.size();
    std::vector<size_t> perm(n);
    for (size_t i = 0; i < n; ++i)
        perm[i] = i;
    util::Rng rng(run.scenario.seed ^ 0x9e57u);
    rng.shuffle(perm);

    std::vector<trace::Trace> shuffled;
    std::vector<int64_t> shuffled_slos;
    shuffled.reserve(n);
    for (size_t i : perm) {
        shuffled.push_back(run.traces[i]);
        shuffled_slos.push_back(run.slos[i]);
    }

    // Individual RCA is a per-trace function of the trace alone, so
    // with clustering off the verdicts must survive any reordering
    // exactly — this part holds in every scenario.
    core::PipelineConfig solo = run.scenario.pipelineConfig();
    solo.clustering = false;
    core::PipelineResult solo_base = run.analyze(solo);
    core::PipelineResult solo_perm =
        run.analyzeBatch(solo, shuffled, shuffled_slos);
    for (size_t pos = 0; pos < n; ++pos) {
        const core::RcaResult &x = solo_base.perTrace[perm[pos]];
        const core::RcaResult &y = solo_perm.perTrace[pos];
        if (x.services != y.services)
            return fail(
                "individual-RCA verdict of trace " +
                std::to_string(perm[pos]) + " [" +
                joinServices(x.services) + "] became [" +
                joinServices(y.services) + "] under permutation");
        if (x.error != y.error || x.resolved != y.resolved)
            return fail("individual-RCA metadata of trace " +
                        std::to_string(perm[pos]) +
                        " changed under permutation");
    }

    core::PipelineConfig cfg = run.scenario.pipelineConfig();
    if (!cfg.clustering)
        return pass();
    core::PipelineResult base = run.analyze(cfg);
    core::PipelineResult permuted =
        run.analyzeBatch(cfg, shuffled, shuffled_slos);
    if (base.skippedTraces != permuted.skippedTraces)
        return fail("skippedTraces changed under permutation");

    if (cfg.algorithm == core::PipelineConfig::Algorithm::Dbscan) {
        // DBSCAN's core points and their connectivity components are
        // order-independent, so the cluster count and every trace's
        // noise-vs-clustered status must hold; which neighboring
        // cluster claims a border point is legitimately order-
        // dependent, so per-trace verdicts are not compared.
        if (base.numClusters != permuted.numClusters)
            return fail("DBSCAN numClusters " +
                        std::to_string(base.numClusters) + " vs " +
                        std::to_string(permuted.numClusters) +
                        " under permutation");
        for (size_t pos = 0; pos < n; ++pos)
            if ((base.clusterLabels[perm[pos]] < 0) !=
                (permuted.clusterLabels[pos] < 0))
                return fail("DBSCAN noise membership of trace " +
                            std::to_string(perm[pos]) +
                            " flipped under permutation");
        return pass();
    }

    // HDBSCAN: when the mutual-reachability edges are tie-free the MST
    // (and everything downstream) is unique, so the full partition and
    // all verdicts must be preserved. With ties, the documented
    // by-index tie-breaking makes the partition order-dependent and
    // only the weak properties above apply.
    if (hdbscanHasTies(pairwiseDistances(run, cfg), cfg.hdbscan))
        return pass();

    if (base.numClusters != permuted.numClusters)
        return fail("numClusters " +
                    std::to_string(base.numClusters) + " vs " +
                    std::to_string(permuted.numClusters) +
                    " under tie-free permutation");

    // The cluster partition must be identical up to label renaming.
    std::map<int, int> base_to_perm;
    for (size_t pos = 0; pos < n; ++pos) {
        int bl = base.clusterLabels[perm[pos]];
        int pl = permuted.clusterLabels[pos];
        if ((bl < 0) != (pl < 0))
            return fail("trace " + std::to_string(perm[pos]) +
                        " noise/cluster membership flipped under "
                        "tie-free permutation");
        if (bl < 0)
            continue;
        auto [it, inserted] = base_to_perm.emplace(bl, pl);
        if (!inserted && it->second != pl)
            return fail("cluster partition not preserved under "
                        "tie-free permutation");
    }

    // Verdicts travel with the trace, not with its batch position.
    for (size_t pos = 0; pos < n; ++pos) {
        const core::RcaResult &x = base.perTrace[perm[pos]];
        const core::RcaResult &y = permuted.perTrace[pos];
        if (x.services != y.services)
            return fail(
                "trace " + std::to_string(perm[pos]) + " verdict [" +
                joinServices(x.services) + "] became [" +
                joinServices(y.services) +
                "] under tie-free permutation");
        if (x.error != y.error)
            return fail("trace " + std::to_string(perm[pos]) +
                        " error verdict changed under permutation");
    }
    return pass();
}

InvariantResult
checkJsonRoundTrip(const ScenarioRun &run, const CheckContext &)
{
    util::Json doc = trace::toJson(run.traces);
    std::string text = doc.dump();
    std::string err;
    util::Json reparsed = util::Json::parse(text, &err);
    if (!err.empty())
        return fail("serialized storm failed to re-parse: " + err);
    std::vector<trace::Trace> reloaded =
        trace::tracesFromJson(reparsed);
    if (reloaded.size() != run.traces.size())
        return fail("round trip changed trace count");
    for (size_t i = 0; i < reloaded.size(); ++i) {
        std::string diff = diffTraces(run.traces[i], reloaded[i]);
        if (!diff.empty())
            return fail("round trip altered " + diff);
    }
    core::PipelineConfig cfg = run.scenario.pipelineConfig();
    std::string diff = diffResults(
        run.analyze(cfg), run.analyzeBatch(cfg, reloaded, run.slos));
    if (!diff.empty())
        return fail("reanalysis after JSON round trip diverged: " +
                    diff);
    return pass();
}

/** Deterministic malformed traces for the skip-accounting check. */
std::vector<trace::Trace>
malformedTraces()
{
    auto span = [](const std::string &id, const std::string &parent,
                   int64_t start, int64_t end) {
        trace::Span s;
        s.spanId = id;
        s.parentSpanId = parent;
        s.service = "campaign-bad";
        s.name = "Op";
        s.startUs = start;
        s.endUs = end;
        s.container = "campaign-bad-ctr";
        s.pod = "campaign-bad-pod";
        s.node = "campaign-bad-node";
        return s;
    };
    std::vector<trace::Trace> out;
    trace::Trace orphan;
    orphan.traceId = "campaign-orphan";
    orphan.spans = {span("r", "", 0, 100),
                    span("x", "no-such-span", 10, 60)};
    out.push_back(orphan);
    trace::Trace cyclic;
    cyclic.traceId = "campaign-cyclic";
    cyclic.spans = {span("r", "", 0, 100), span("a", "b", 5, 50),
                    span("b", "a", 6, 40)};
    out.push_back(cyclic);
    trace::Trace dup;
    dup.traceId = "campaign-dup";
    dup.spans = {span("r", "", 0, 100), span("d", "r", 5, 50),
                 span("d", "r", 6, 40)};
    out.push_back(dup);
    return out;
}

InvariantResult
checkSkippedAccounting(const ScenarioRun &run, const CheckContext &ctx)
{
    core::PipelineConfig cfg = run.scenario.pipelineConfig();
    core::PipelineResult base = run.analyze(cfg);

    std::vector<trace::Trace> batch = run.traces;
    std::vector<int64_t> batch_slos = run.slos;
    const size_t n = run.traces.size();
    std::vector<trace::Trace> bad = malformedTraces();
    for (trace::Trace &t : bad) {
        batch.push_back(std::move(t));
        batch_slos.push_back(1000);
    }
    size_t k = batch.size() - n;
    size_t expected_skipped = k;
    if (ctx.mutation == "miscount-skipped")
        expected_skipped = k + 1;  // deliberately wrong (test-only)

    core::PipelineResult res =
        run.analyzeBatch(cfg, batch, batch_slos);
    if (res.skippedTraces != expected_skipped)
        return fail("skippedTraces=" +
                    std::to_string(res.skippedTraces) + ", expected " +
                    std::to_string(expected_skipped) + " after " +
                    std::to_string(k) + " injected malformed traces");
    for (size_t i = n; i < batch.size(); ++i) {
        if (res.perTrace[i].error.empty())
            return fail("injected malformed trace " +
                        std::to_string(i - n) +
                        " did not get an error verdict");
        if (res.clusterLabels[i] != -1)
            return fail("injected malformed trace was clustered");
    }
    // The well-formed prefix must be untouched: malformed traces are
    // compacted out before the distance matrix, so clustering and
    // verdicts match the clean batch exactly.
    core::PipelineResult prefix;
    prefix.perTrace.assign(res.perTrace.begin(),
                           res.perTrace.begin() +
                               static_cast<long>(n));
    prefix.clusterLabels.assign(res.clusterLabels.begin(),
                                res.clusterLabels.begin() +
                                    static_cast<long>(n));
    prefix.numClusters = res.numClusters;
    prefix.rcaInvocations = res.rcaInvocations;
    prefix.distanceEvaluations = res.distanceEvaluations;
    prefix.skippedTraces = 0;
    core::PipelineResult base_like = base;
    base_like.skippedTraces = 0;
    std::string diff = diffResults(base_like, prefix);
    if (!diff.empty())
        return fail("well-formed traces were disturbed by malformed "
                    "batch mates: " + diff);

    // Distance accounting must exclude malformed rows on the
    // caller-provided-distance path too (the analyzeWithMatrix /
    // analyzeWithDistance contract).
    core::SleuthPipeline pipeline(run.adapter->model(),
                                  run.adapter->encoder(),
                                  run.adapter->profile(), cfg);
    std::function<double(size_t, size_t)> flat = [](size_t, size_t) {
        return 0.3;
    };
    core::PipelineResult via_matrix =
        pipeline.analyzeWithDistance(batch, batch_slos, flat);
    size_t expected_evals =
        cfg.clustering ? n * (n > 0 ? n - 1 : 0) / 2 : 0;
    if (via_matrix.skippedTraces != k)
        return fail("matrix path skippedTraces=" +
                    std::to_string(via_matrix.skippedTraces) +
                    ", expected " + std::to_string(k));
    if (via_matrix.distanceEvaluations != expected_evals)
        return fail("matrix path distanceEvaluations=" +
                    std::to_string(via_matrix.distanceEvaluations) +
                    ", expected " + std::to_string(expected_evals) +
                    " over the well-formed traces");
    return pass();
}

InvariantResult
checkAccuracyFloor(const ScenarioRun &run, const CheckContext &)
{
    // Some randomized scenarios are unsolvable at service granularity
    // (node-scope faults perturbing everything a little, storms of a
    // handful of traces), so an unconditional per-scenario floor would
    // flake on arbitrary seeds. The floor is therefore gated on
    // scenario easiness: when the crude max-duration heuristic solves
    // the storm comfortably, a collapsed model has no excuse.
    baselines::MaxDurationRca heuristic;
    heuristic.fit(run.trainCorpus);
    size_t heuristic_hits = 0;
    for (size_t i = 0; i < run.traces.size(); ++i) {
        for (const std::string &svc :
             heuristic.locate(run.traces[i], run.slos[i])) {
            if (run.truthServices[i].count(svc)) {
                ++heuristic_hits;
                break;
            }
        }
    }
    double heuristic_rate = static_cast<double>(heuristic_hits) /
                            static_cast<double>(run.traces.size());
    double floor = tierFloor(run.scenario.numRpcs);
    if (heuristic_rate < 0.7 || floor < 0.0)
        return pass();  // hard scenario or tiny tier: no floor binds

    core::PipelineResult res =
        run.analyze(run.scenario.pipelineConfig());
    double rate = hitRate(res, run.truthServices);
    if (rate + 1e-12 < floor) {
        std::ostringstream os;
        os << "top-k hit rate " << rate << " below the "
           << run.scenario.numRpcs << "-RPC tier floor " << floor
           << " over " << run.traces.size()
           << " queries (heuristic solves " << heuristic_rate
           << " of them: the scenario is easy)";
        return fail(os.str());
    }
    return pass();
}

InvariantResult
checkBaselineDifferential(const ScenarioRun &run, const CheckContext &)
{
    core::PipelineResult res =
        run.analyze(run.scenario.pipelineConfig());
    baselines::MaxDurationRca baseline;
    baseline.fit(run.trainCorpus);

    std::set<std::string> services = run.serviceNames();
    size_t baseline_hits = 0;
    for (size_t i = 0; i < run.traces.size(); ++i) {
        std::vector<std::string> predicted =
            baseline.locate(run.traces[i], run.slos[i]);
        for (const std::string &svc : predicted)
            if (!services.count(svc))
                return fail("baseline predicted unknown service '" +
                            svc + "'");
        for (const std::string &svc : predicted) {
            if (run.truthServices[i].count(svc)) {
                ++baseline_hits;
                break;
            }
        }
        for (const std::string &svc : res.perTrace[i].services)
            if (!services.count(svc))
                return fail("pipeline predicted unknown service '" +
                            svc + "'");
    }
    // The gap check binds from the 16-RPC tier up, like the accuracy
    // floor (12-RPC models are too small to train reliably; their
    // prediction-name sanity above still applies).
    if (run.scenario.numRpcs < 16)
        return pass();
    double baseline_rate = static_cast<double>(baseline_hits) /
                           static_cast<double>(run.traces.size());
    double sleuth_rate = hitRate(res, run.truthServices);
    // Differential sanity, not a leaderboard: the learned pipeline
    // may trail the single-best-guess heuristic on a lucky storm
    // (worst observed gap over 1000+ random scenarios: 0.64), but a
    // larger gap means the model or the clustering broke.
    if (sleuth_rate + 0.75 < baseline_rate) {
        std::ostringstream os;
        os << "pipeline hit rate " << sleuth_rate
           << " implausibly far below the max-duration baseline "
           << baseline_rate;
        return fail(os.str());
    }
    return pass();
}

InvariantResult
checkStorageRoundTrip(const ScenarioRun &run, const CheckContext &)
{
    storage::TraceStore store;
    collector::TraceCollector coll(&store);
    for (size_t i = 0; i < run.traces.size(); ++i) {
        util::Json payload = util::Json::array();
        payload.push(trace::toJson(run.traces[i]));
        size_t accepted = coll.ingest(payload.dump(),
                                      collector::Protocol::Otel,
                                      run.slos[i]);
        if (accepted != 1)
            return fail("collector rejected well-formed trace " +
                        run.traces[i].traceId);
    }
    if (store.size() != run.traces.size())
        return fail("store holds " + std::to_string(store.size()) +
                    " records, expected " +
                    std::to_string(run.traces.size()));

    // Reload in the original batch order (keyed by traceId) and
    // require a bitwise-identical reanalysis.
    std::map<std::string, size_t> by_id;
    for (size_t id = 0; id < store.size(); ++id)
        by_id[store.at(id).traceId()] = id;
    std::vector<trace::Trace> reloaded;
    std::vector<int64_t> reloaded_slos;
    for (size_t i = 0; i < run.traces.size(); ++i) {
        auto it = by_id.find(run.traces[i].traceId);
        if (it == by_id.end())
            return fail("trace " + run.traces[i].traceId +
                        " vanished in the store");
        const storage::Record &rec = store.at(it->second);
        std::string diff = diffTraces(run.traces[i], rec.trace());
        if (!diff.empty())
            return fail("persisted " + diff);
        if (rec.sloUs != run.slos[i])
            return fail("persisted SLO drifted for trace " +
                        run.traces[i].traceId);
        reloaded.push_back(rec.trace());
        reloaded_slos.push_back(rec.sloUs);
    }
    core::PipelineConfig cfg = run.scenario.pipelineConfig();
    std::string diff =
        diffResults(run.analyze(cfg),
                    run.analyzeBatch(cfg, reloaded, reloaded_slos));
    if (!diff.empty())
        return fail("reanalysis after collector→store→reload "
                    "diverged: " + diff);
    return pass();
}

/**
 * The fields of an incident that must be identical across ingest
 * thread counts (wall-clock timing excluded by construction).
 */
std::string
incidentFingerprint(const online::Incident &incident)
{
    std::ostringstream os;
    os << incident.id << "|" << online::toString(incident.state) << "|"
       << incident.openedAtUs << "|" << incident.windowStartUs << "|"
       << incident.windowEndUs << "|" << incident.snapshotMaxRecordId
       << "\n";
    for (const std::string &e : incident.endpoints)
        os << "ep " << e << "\n";
    for (size_t i = 0; i < incident.anomalousTraces.size(); ++i) {
        os << incident.anomalousTraces[i].traceId << " slo "
           << incident.slos[i];
        if (i < incident.rca.perTrace.size())
            os << " -> "
               << joinServices(incident.rca.perTrace[i].services);
        os << "\n";
    }
    for (const trace::Trace &t : incident.normalSample)
        os << "normal " << t.traceId << "\n";
    for (const auto &[svc, votes] : incident.rankedRootCauses)
        os << "rank " << svc << "=" << votes << "\n";
    return os.str();
}

/** One span delivery on the staggered storm timeline. */
struct StormDelivery
{
    int64_t atUs = 0;
    online::SpanEvent event;
};

/**
 * The scenario's storm rendered as an online serving workload, shared
 * by every online-layer invariant (differential, crash-recovery,
 * wal-torn-tail): a detection configuration whose single window
 * comfortably spans the staggered storm, an endpoint SLO map judging
 * each endpoint by the tightest SLO seen at it, and the storm exploded
 * into span events delivered at span end in one canonical order (the
 * thread count only changes which thread performs a delivery).
 */
struct StormTimeline
{
    online::OnlineConfig cfg;
    std::vector<StormDelivery> deliveries;
    /** Latest span end on the staggered timeline. */
    int64_t lastEndUs = 0;
    /** Poll instant by which every delivered trace has completed. */
    int64_t pollAtUs = 0;
};

StormTimeline
buildStormTimeline(const ScenarioRun &run)
{
    StormTimeline tl;
    online::OnlineConfig &cfg = tl.cfg;
    cfg.pipeline = run.scenario.pipelineConfig();
    // One detection window comfortably spanning the whole staggered
    // storm, firing on the first anomalous trace.
    cfg.detector.bucketUs = 1'000'000;
    cfg.detector.windowBuckets = 64;
    cfg.detector.minWindowCount = 1;
    cfg.detector.minAnomalous = 1;
    cfg.detector.onsetFraction = 0.01;
    cfg.detector.clearFraction = 0.0;
    cfg.assembler.latenessUs = 10'000;
    cfg.assembler.quietGapUs = 10'000;
    // Campaign scenarios construct many short-lived services; size the
    // rings to the storm (one poll drains everything) instead of the
    // serving default, which provisions for a full poll interval at
    // million-span/s rates.
    cfg.ringCapacitySpans = 4096;
    // Judge each endpoint by the tightest SLO seen at it: every
    // harvested storm trace violates its own flow's SLO (or errors at
    // the root), so all of them stay anomalous under the minimum.
    for (size_t i = 0; i < run.traces.size(); ++i) {
        const trace::Span *root = nullptr;
        for (const trace::Span &s : run.traces[i].spans)
            if (s.parentSpanId.empty()) {
                root = &s;
                break;
            }
        if (root == nullptr)
            continue;
        auto [it, inserted] = cfg.endpoints.try_emplace(
            root->service + "/" + root->name,
            online::EndpointProfile{run.slos[i], -1});
        if (!inserted && run.slos[i] < it->second.sloUs)
            it->second.sloUs = run.slos[i];
    }

    for (size_t i = 0; i < run.traces.size(); ++i) {
        int64_t shift = static_cast<int64_t>(i) * 10'000;
        for (trace::Span span : run.traces[i].spans) {
            span.startUs += shift;
            span.endUs += shift;
            tl.lastEndUs = std::max(tl.lastEndUs, span.endUs);
            tl.deliveries.push_back(
                {span.endUs,
                 online::SpanEvent{run.traces[i].traceId, span}});
        }
    }
    std::sort(tl.deliveries.begin(), tl.deliveries.end(),
              [](const StormDelivery &a, const StormDelivery &b) {
                  if (a.atUs != b.atUs)
                      return a.atUs < b.atUs;
                  if (a.event.traceId != b.event.traceId)
                      return a.event.traceId < b.event.traceId;
                  return a.event.span.spanId < b.event.span.spanId;
              });
    tl.pollAtUs = tl.lastEndUs + cfg.assembler.quietGapUs +
                  cfg.assembler.latenessUs + 1;
    return tl;
}

InvariantResult
checkOnlineDifferential(const ScenarioRun &run, const CheckContext &)
{
    // Route the scenario's storm through the online serving layer as a
    // span stream and require (a) the same incident — snapshot, every
    // verdict, the root-cause ranking — at 1/2/8 ingest threads,
    // (b) that the snapshot reproduces from the trace store via the
    // recorded high-water mark, and (c) that the incident-scoped RCA
    // is bitwise equal to the batch pipeline over that snapshot.
    StormTimeline tl = buildStormTimeline(run);
    const online::OnlineConfig &cfg = tl.cfg;
    const std::vector<StormDelivery> &deliveries = tl.deliveries;
    int64_t last_end = tl.lastEndUs;
    int64_t poll_at = tl.pollAtUs;

    // The differential runs on two timelines: the staggered storm as
    // built, and the same storm shifted wholly before the epoch (every
    // detector bucket index < -1) — the regression surface of the old
    // Bucket empty-sentinel collision, which silently dropped all
    // pre-epoch observations and opened no incident. On top of that,
    // every shed policy gets its own leg with an active per-poll
    // budget, proving shed decisions are deterministic given the
    // event stream.
    // Fingerprint references are keyed per leg and shared across
    // runTimeline calls, so a re-run of the same timeline (the
    // SIMD-off leg below) is pinned byte-for-byte to the first run's
    // incident rather than merely to itself.
    std::map<std::string, std::string> reference_by_key;
    // Shed legs of a heavily-shrunk scenario may deterministically
    // shed every anomalous trace; the invariant then pins the absence
    // of an incident across thread counts instead of failing.
    auto runTimeline = [&](int64_t shift, const std::string &label,
                           const online::OnlineConfig &use_cfg,
                           const std::string &ref_key,
                           bool allow_no_incident =
                               false) -> InvariantResult {
    std::string &reference = reference_by_key[ref_key];
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        online::OnlineService service(run.adapter->model(),
                                      run.adapter->encoder(),
                                      run.adapter->profile(), use_cfg);
        auto deliver = [&](const StormDelivery &d) {
            online::SpanEvent ev = d.event;
            ev.span.startUs += shift;
            ev.span.endUs += shift;
            service.ingest(ev);
        };
        if (threads == 1) {
            for (const StormDelivery &d : deliveries)
                deliver(d);
        } else {
            std::vector<std::thread> workers;
            for (size_t t = 0; t < threads; ++t)
                workers.emplace_back([&, t] {
                    for (size_t i = t; i < deliveries.size();
                         i += threads)
                        deliver(deliveries[i]);
                });
            for (std::thread &w : workers)
                w.join();
        }
        service.poll(poll_at + shift);
        if (service.incidents().empty() && !allow_no_incident)
            return fail(label + "online layer opened no incident over "
                        "the storm at ingestThreads=" +
                        std::to_string(threads));
        const online::Incident *incident =
            service.incidents().empty() ? nullptr
                                        : &service.incidents()[0];
        std::string fp = incident != nullptr
                             ? incidentFingerprint(*incident)
                             : std::string("no-incident\n");
        // Drop accounting rides the fingerprint: with poll-side
        // shedding the whole drop taxonomy — not just the incident —
        // must be identical at any producer thread count.
        {
            online::OnlineStats stats = service.stats();
            std::ostringstream acct;
            acct << "acct " << stats.spansIngested << "/"
                 << stats.assembly.spansAccepted << "/"
                 << stats.assembly.spansRejected << " drops "
                 << stats.assembly.droppedOrphan << ","
                 << stats.assembly.droppedDuplicate << ","
                 << stats.assembly.droppedLate << ","
                 << stats.assembly.droppedMalformed << ","
                 << stats.assembly.droppedBackpressure << ","
                 << stats.assembly.droppedRingFull << ","
                 << stats.assembly.droppedShed << "\n";
            fp += acct.str();
        }
        if (reference.empty())
            reference = fp;
        else if (fp != reference)
            return fail(label + "incident diverges at ingestThreads=" +
                        std::to_string(threads));
        if (threads != 1 || incident == nullptr)
            continue;

        // Batch side of the differential, over the snapshot
        // reconstructed independently from the store.
        storage::Query q;
        q.minStartUs = incident->windowStartUs;
        q.maxStartUs = incident->windowEndUs;
        q.onlyAnomalous = true;
        std::vector<const storage::Record *> window =
            service.store().query(q);
        std::vector<const storage::Record *> rows;
        for (const storage::Record *r : window)
            if (r->id <= incident->snapshotMaxRecordId)
                rows.push_back(r);
        std::sort(rows.begin(), rows.end(),
                  [](const storage::Record *a,
                     const storage::Record *b) {
                      if (a->startUs() != b->startUs())
                          return a->startUs() < b->startUs();
                      return a->traceId() < b->traceId();
                  });
        if (rows.size() != incident->anomalousTraces.size())
            return fail(
                label + "snapshot not reproducible from the store: " +
                std::to_string(rows.size()) + " records vs " +
                std::to_string(incident->anomalousTraces.size()) +
                " snapshot traces");
        std::vector<trace::Trace> batch;
        std::vector<int64_t> batch_slos;
        for (size_t i = 0; i < rows.size(); ++i) {
            if (rows[i]->traceId() !=
                incident->anomalousTraces[i].traceId)
                return fail(label + "snapshot order diverges from the "
                            "store at position " + std::to_string(i));
            batch.push_back(rows[i]->trace());
            batch_slos.push_back(rows[i]->sloUs);
        }
        std::string diff = diffResults(
            incident->rca,
            run.analyzeBatch(use_cfg.pipeline, batch, batch_slos));
        if (!diff.empty())
            return fail(label + "online incident RCA diverges from the "
                        "batch pipeline over the same snapshot: " +
                        diff);
        if (core::aggregateRootCauses(incident->rca) !=
            incident->rankedRootCauses)
            return fail(label + "incident root-cause ranking is not "
                        "the aggregation of its per-trace verdicts");
    }
    return pass();
    };

    InvariantResult on_epoch = runTimeline(0, "", cfg, "epoch");
    if (!on_epoch.pass)
        return on_epoch;
    // SIMD-off leg: replay the epoch timeline with the vectorized
    // kernels force-dispatched to their scalar mirrors. The shared
    // fingerprint reference pins columnar + SIMD ≡ legacy scalar end
    // to end — ingest, detection, snapshot, RCA, and ranking.
    {
        simd::ScopedForceScalar scalar_only;
        InvariantResult simd_off =
            runTimeline(0, "simd-off: ", cfg, "epoch");
        if (!simd_off.pass)
            return simd_off;
    }
    // Shed-policy legs: rerun the epoch timeline with a per-poll
    // budget tight enough that every policy actually sheds (60% of
    // the storm's spans survive). Different policies legitimately
    // keep different survivors — each leg pins only its own
    // fingerprint across 1/2/8 producer threads, plus the usual
    // store-snapshot/batch differential over whatever survived.
    for (online::ShedPolicy policy : {online::ShedPolicy::DropNewest,
                                      online::ShedPolicy::DropOldest,
                                      online::ShedPolicy::Sample}) {
        online::OnlineConfig shed_cfg = cfg;
        shed_cfg.shedPolicy = policy;
        shed_cfg.shedBudgetSpans = std::max<size_t>(
            1, deliveries.size() * 3 / (5 * shed_cfg.ingestShards));
        std::string name = online::toString(policy);
        InvariantResult shed_leg = runTimeline(
            0, "shed-policy " + name + ": ", shed_cfg,
            "shed:" + name, /*allow_no_incident=*/true);
        if (!shed_leg.pass)
            return shed_leg;
    }
    // Shift the whole storm (and the poll watermark) so every span end
    // lands below -2 detector buckets.
    return runTimeline(-(last_end + 3 * cfg.detector.bucketUs),
                       "negative-epoch timeline: ", cfg, "negative");
}

/** mkdtemp under $TMPDIR (default /tmp), removed on destruction. */
struct TempDir
{
    std::string path;

    explicit TempDir(const char *tag)
    {
        const char *base = std::getenv("TMPDIR");
        std::string tmpl =
            (base != nullptr && *base != '\0') ? base : "/tmp";
        if (tmpl.back() != '/')
            tmpl += '/';
        tmpl += std::string("sleuth-") + tag + "-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (::mkdtemp(buf.data()) != nullptr)
            path.assign(buf.data());
    }

    ~TempDir()
    {
        if (!path.empty()) {
            std::error_code ec;
            std::filesystem::remove_all(path, ec);
        }
    }

    TempDir(const TempDir &) = delete;
    TempDir &operator=(const TempDir &) = delete;
};

/** Deliver a slice of the storm with `threads` striding producers. */
void
deliverStorm(online::OnlineService *service,
             const std::vector<StormDelivery> &deliveries,
             size_t threads)
{
    if (threads <= 1) {
        for (const StormDelivery &d : deliveries)
            service->ingest(d.event);
        return;
    }
    std::vector<std::thread> workers;
    for (size_t t = 0; t < threads; ++t)
        workers.emplace_back([&, t] {
            for (size_t i = t; i < deliveries.size(); i += threads)
                service->ingest(deliveries[i].event);
        });
    for (std::thread &w : workers)
        w.join();
}

InvariantResult
checkCrashRecovery(const ScenarioRun &run, const CheckContext &ctx)
{
    // Kill the durable serving layer mid-storm and restart it from
    // disk (DESIGN.md §3.15): at 1/2/8 ingest threads, the recovered
    // service — replayed snapshot + committed WAL polls, then fed the
    // rest of the storm — must fingerprint bitwise equal to an
    // uninterrupted (non-durable) run of the same delivery/poll
    // schedule. The storm is split by whole traces, and the crash
    // lands on a quiescent committed poll: everything the service
    // acknowledged at that poll is on disk, while the volatile ingest
    // front it would have lost in a real crash is exactly the part
    // the upstream redelivers (the second half of the schedule).
    StormTimeline tl = buildStormTimeline(run);
    online::OnlineConfig cfg = tl.cfg;
    // Tight retention so the committed history contains real
    // evictions: replay must honor them to land on the same state
    // (and the skip-eviction-replay mutation has decisions to skip).
    cfg.retention.maxRecords =
        std::max<size_t>(1, run.traces.size() / 4);

    // First half = whole traces only — a trace straddling the crash
    // would leave assembler state the crash legitimately forgets.
    std::set<std::string> first_ids;
    for (size_t i = 0; i < run.traces.size() / 2; ++i)
        first_ids.insert(run.traces[i].traceId);
    std::vector<StormDelivery> first, second;
    int64_t first_last_end = 0;
    for (const StormDelivery &d : tl.deliveries) {
        if (first_ids.count(d.event.traceId) != 0) {
            first.push_back(d);
            first_last_end = std::max(first_last_end, d.atUs);
        } else {
            second.push_back(d);
        }
    }
    int64_t mid_poll = first_last_end + cfg.assembler.quietGapUs +
                       cfg.assembler.latenessUs + 1;
    int64_t final_poll = std::max(tl.pollAtUs, mid_poll + 1);
    int64_t drain_at = final_poll + 1;

    online::RecoverOptions opts;
    opts.skipEvictionReplay = ctx.mutation == "skip-eviction-replay";

    uint64_t reference = 0;
    bool have_reference = false;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
        std::string at =
            " at ingestThreads=" + std::to_string(threads);

        // Uninterrupted control run, no durability attached: also
        // pins that attaching the log never changes serving state.
        uint64_t uninterrupted = 0;
        {
            online::OnlineService service(run.adapter->model(),
                                          run.adapter->encoder(),
                                          run.adapter->profile(), cfg);
            deliverStorm(&service, first, threads);
            service.poll(mid_poll);
            deliverStorm(&service, second, threads);
            service.poll(final_poll);
            service.drainAll(drain_at);
            uninterrupted = service.servingFingerprint();
        }

        TempDir dir("crash");
        if (dir.path.empty())
            return fail("cannot create a temporary data directory");
        durable::DurableConfig dcfg;
        dcfg.dir = dir.path;
        dcfg.fsyncPolicy = durable::FsyncPolicy::Off;
        // One leg recovers through a snapshot + WAL tail, the others
        // through pure WAL replay.
        dcfg.snapshotEveryPolls = threads == 2 ? 1 : 0;

        // Durable run up to the crash point.
        {
            online::OnlineService service(run.adapter->model(),
                                          run.adapter->encoder(),
                                          run.adapter->profile(), cfg);
            online::RecoveryInfo boot = service.enableDurability(dcfg);
            if (!boot.ok)
                return fail("fresh durable service refused to open " +
                            dir.path + ": " + boot.error);
            deliverStorm(&service, first, threads);
            service.poll(mid_poll);
            if (service.backlogSpans() != 0)
                return fail("crash point is not quiescent (" +
                            std::to_string(service.backlogSpans()) +
                            " backlog spans)" + at);
            // Crash: the service dies here. Committed polls are on
            // disk; rings and assemblers are simply gone.
        }

        // Restart from disk and finish the storm.
        uint64_t recovered_fp = 0;
        {
            online::OnlineService service(run.adapter->model(),
                                          run.adapter->encoder(),
                                          run.adapter->profile(), cfg);
            online::RecoveryInfo rec =
                service.enableDurability(dcfg, opts);
            if (!rec.ok)
                return fail("recovery failed" + at + ": " + rec.error);
            if (dcfg.snapshotEveryPolls != 0 && !rec.usedSnapshot)
                return fail("snapshot-every=1 recovery did not seed "
                            "from a snapshot" + at);
            deliverStorm(&service, second, threads);
            service.poll(final_poll);
            service.drainAll(drain_at);
            recovered_fp = service.servingFingerprint();
        }

        // Replay the finished log once more: the drainAll commit
        // group seals several detector advances under one marker, and
        // replaying them must land on the live service's exact state.
        online::RecoveryInfo again;
        online::DurableServingState state =
            online::recoverState(dcfg, opts, &again);
        if (!again.ok)
            return fail("post-drain replay failed" + at + ": " +
                        again.error);
        uint64_t replay_fp = online::servingStateFingerprint(
            state.store, state.detector, state.incidents,
            state.watermarkUs, state.tracesStored, state.lastRecordId);
        if (replay_fp != recovered_fp)
            return fail("post-drain replay diverges from the live "
                        "recovered service" + at);

        if (!have_reference) {
            reference = uninterrupted;
            have_reference = true;
        } else if (uninterrupted != reference) {
            return fail("uninterrupted run diverges" + at);
        }
        if (recovered_fp != reference)
            return fail("recovered run diverges from the "
                        "uninterrupted run" + at);
    }
    return pass();
}

InvariantResult
checkWalTornTail(const ScenarioRun &run, const CheckContext &)
{
    // Crash artifacts never pick a polite boundary: truncate the WAL
    // at every frame boundary, inside frames, and at random offsets,
    // and flip single bits — recovery must never crash and must
    // always rebuild exactly the committed-poll prefix that survived
    // (ref[m] below), discarding any unsealed tail.
    StormTimeline tl = buildStormTimeline(run);
    online::OnlineConfig cfg = tl.cfg;
    cfg.retention.maxRecords =
        std::max<size_t>(1, run.traces.size() / 4);

    TempDir dir("torn");
    if (dir.path.empty())
        return fail("cannot create a temporary data directory");
    durable::DurableConfig dcfg;
    dcfg.dir = dir.path;
    dcfg.fsyncPolicy = durable::FsyncPolicy::Off;
    dcfg.snapshotEveryPolls = 0; // pure WAL: one segment, no rotation

    // Write a multi-poll log: the storm in whole-trace chunks, one
    // poll per chunk, recording the live fingerprint after each
    // committed poll (plus ref[0], the empty service).
    const size_t kPolls = 4;
    std::vector<uint64_t> reference;
    {
        online::OnlineService service(run.adapter->model(),
                                      run.adapter->encoder(),
                                      run.adapter->profile(), cfg);
        online::RecoveryInfo boot = service.enableDurability(dcfg);
        if (!boot.ok)
            return fail("fresh durable service refused to open " +
                        dir.path + ": " + boot.error);
        reference.push_back(service.servingFingerprint());
        int64_t poll_at = std::numeric_limits<int64_t>::min();
        size_t begin = 0;
        for (size_t p = 0; p < kPolls; ++p) {
            size_t end = run.traces.size() * (p + 1) / kPolls;
            std::set<std::string> chunk_ids;
            for (size_t i = begin; i < end; ++i)
                chunk_ids.insert(run.traces[i].traceId);
            int64_t chunk_last_end = 0;
            for (const StormDelivery &d : tl.deliveries)
                if (chunk_ids.count(d.event.traceId) != 0) {
                    service.ingest(d.event);
                    chunk_last_end =
                        std::max(chunk_last_end, d.atUs);
                }
            poll_at = std::max(poll_at + 1,
                               chunk_last_end +
                                   cfg.assembler.quietGapUs +
                                   cfg.assembler.latenessUs + 1);
            service.poll(poll_at);
            reference.push_back(service.servingFingerprint());
            begin = end;
        }
    }

    std::vector<std::pair<uint64_t, std::string>> segments =
        durable::listSegments(dir.path);
    if (segments.size() != 1)
        return fail("expected one WAL segment, found " +
                    std::to_string(segments.size()));
    durable::SegmentScan scan = durable::scanSegment(segments[0].second);
    if (scan.torn)
        return fail("pristine log scans as torn: " + scan.tornReason);
    if (scan.frames.empty())
        return fail("pristine log holds no frames");
    std::string pristine;
    {
        std::ifstream in(segments[0].second, std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        pristine = buf.str();
    }
    if (pristine.size() != scan.validBytes)
        return fail("segment bytes do not match the scan");

    // Committed polls fully contained in the first `bytes` of the
    // segment (a truncation there recovers exactly ref of that).
    auto pollsWithin = [&](uint64_t bytes) {
        size_t polls = 0, frames = 0;
        for (size_t i = 0; i < scan.frames.size(); ++i) {
            uint64_t end = i + 1 < scan.frames.size()
                               ? scan.frames[i + 1].offset
                               : scan.validBytes;
            if (end > bytes)
                break;
            ++frames;
            if (scan.frames[i].kind ==
                durable::RecordKind::PollMarker)
                ++polls;
        }
        return std::make_pair(polls, frames);
    };

    TempDir scratch("torn-case");
    if (scratch.path.empty())
        return fail("cannot create a scratch data directory");
    std::string scratch_seg =
        scratch.path + "/" + durable::segmentFileName(0);
    durable::DurableConfig scfg;
    scfg.dir = scratch.path;
    scfg.fsyncPolicy = durable::FsyncPolicy::Off;

    // `validUpTo` is the length of the byte prefix known to be intact
    // (everything at or past it may be torn or corrupt).
    auto checkCase = [&](const std::string &bytes, uint64_t validUpTo,
                         const std::string &label)
        -> InvariantResult {
        {
            std::ofstream out(scratch_seg,
                              std::ios::binary | std::ios::trunc);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        }
        online::RecoveryInfo info;
        online::DurableServingState state =
            online::recoverState(scfg, {}, &info);
        if (!info.ok)
            return fail(label + ": recovery reported an internal "
                        "inconsistency: " + info.error);
        auto [polls, frames] = pollsWithin(
            std::min<uint64_t>(validUpTo, scan.validBytes));
        if (frames == 0) {
            // Not even the Epoch survived: recovery must come back
            // empty (the detector config is unknowable from bytes).
            if (state.tracesStored != 0 || state.store.size() != 0 ||
                !state.incidents.empty())
                return fail(label + ": recovery from an empty prefix "
                            "is not the empty state");
            return pass();
        }
        uint64_t fp = online::servingStateFingerprint(
            state.store, state.detector, state.incidents,
            state.watermarkUs, state.tracesStored, state.lastRecordId);
        if (fp != reference[polls])
            return fail(label + ": recovery does not equal the live "
                        "state after " + std::to_string(polls) +
                        " committed polls");
        return pass();
    };

    // Every frame boundary, plus offsets inside every frame header
    // and body, as truncation points.
    for (size_t i = 0; i <= scan.frames.size(); ++i) {
        uint64_t boundary = i < scan.frames.size()
                                ? scan.frames[i].offset
                                : scan.validBytes;
        InvariantResult r = checkCase(
            pristine.substr(0, boundary), boundary,
            "truncate at frame boundary " + std::to_string(boundary));
        if (!r.pass)
            return r;
        if (i < scan.frames.size()) {
            uint64_t end = i + 1 < scan.frames.size()
                               ? scan.frames[i + 1].offset
                               : scan.validBytes;
            for (uint64_t cut :
                 {boundary + 1, boundary + 5, end - 1}) {
                if (cut <= boundary || cut >= end)
                    continue;
                r = checkCase(pristine.substr(0, cut), cut,
                              "truncate mid-frame at " +
                                  std::to_string(cut));
                if (!r.pass)
                    return r;
            }
        }
    }

    // The byte offset where the frame containing `at` starts: a flip
    // there tears the log at that frame, keeping everything before.
    auto frameStartBefore = [&](uint64_t at) {
        uint64_t start = 0;
        for (const durable::WalFrame &f : scan.frames) {
            if (f.offset > at)
                break;
            start = f.offset;
        }
        return start;
    };

    // Random truncations and single-bit flips (seed-pinned).
    util::Rng rng(run.scenario.seed ^ 0x70524eULL);
    for (int k = 0; k < 8; ++k) {
        uint64_t cut = static_cast<uint64_t>(rng.uniformInt(
            0, static_cast<int64_t>(pristine.size())));
        InvariantResult r = checkCase(
            pristine.substr(0, cut), cut,
            "truncate at random offset " + std::to_string(cut));
        if (!r.pass)
            return r;
    }
    for (int k = 0; k < 8; ++k) {
        uint64_t at = static_cast<uint64_t>(rng.uniformInt(
            0, static_cast<int64_t>(pristine.size()) - 1));
        std::string flipped = pristine;
        flipped[at] = static_cast<char>(
            static_cast<uint8_t>(flipped[at]) ^
            (1u << rng.uniformInt(0, 7)));
        // The flipped frame fails its CRC (or its length turns
        // implausible): the valid prefix ends where it starts.
        InvariantResult r = checkCase(
            flipped, frameStartBefore(at),
            "bit flip at offset " + std::to_string(at));
        if (!r.pass)
            return r;
    }
    return pass();
}

InvariantResult
checkDropAccounting(const ScenarioRun &run, const CheckContext &)
{
    // Conservation ledger over the ingest path: at a quiescent barrier
    // (producers joined, poll done) every span ever offered to
    // ingest() is accounted for exactly once —
    //
    //   sent == accepted + Σ(drops by reason) + backlog
    //
    // — and the whole ledger is bitwise identical at 1/2/8 producer
    // threads for every shed policy, since poll-side shedding decides
    // over the canonically re-sorted drained batch. A final leg
    // shrinks the physical ring so the enqueue-side ring-full path
    // fires: there the victim set is legitimately nondeterministic
    // (whichever producer loses the race is dropped), but the ledger
    // must still balance and the ring-full count itself stays
    // deterministic — between barriered polls exactly `capacity`
    // pushes per shard can succeed.
    online::OnlineConfig base;
    base.pipeline = run.scenario.pipelineConfig();
    base.detector.bucketUs = 1'000'000;
    base.detector.windowBuckets = 64;
    // Accounting only: detection and RCA are pinned by
    // online-differential, so keep the detector from opening incidents
    // over whatever survives shedding.
    base.detector.minAnomalous = 1'000'000;
    base.assembler.latenessUs = 10'000;
    base.assembler.quietGapUs = 10'000;
    // Short-lived services: ring sized to the storm, not the serving
    // default (the ring-full leg below overrides this downward).
    base.ringCapacitySpans = 4096;

    std::vector<online::SpanEvent> events;
    int64_t last_end = 0;
    for (size_t i = 0; i < run.traces.size(); ++i) {
        int64_t shift = static_cast<int64_t>(i) * 10'000;
        for (trace::Span span : run.traces[i].spans) {
            span.startUs += shift;
            span.endUs += shift;
            last_end = std::max(last_end, span.endUs);
            events.push_back({run.traces[i].traceId, span});
            // Every third span is delivered twice so the duplicate
            // reason participates in the ledger (and, when the budget
            // is 1, guarantees some shard holds two spans and sheds).
            if (events.size() % 3 == 0)
                events.push_back(events.back());
        }
    }
    if (events.size() < 3)
        return pass();
    int64_t poll_at = last_end + base.assembler.quietGapUs +
                      base.assembler.latenessUs + 1;

    struct Leg
    {
        std::string name;
        online::OnlineConfig cfg;
        /** Poll-side shed: the whole ledger is thread-invariant. */
        bool deterministic = true;
    };
    std::vector<Leg> legs;
    for (online::ShedPolicy policy : {online::ShedPolicy::DropNewest,
                                      online::ShedPolicy::DropOldest,
                                      online::ShedPolicy::Sample}) {
        Leg leg;
        leg.cfg = base;
        leg.cfg.shedPolicy = policy;
        leg.cfg.shedBudgetSpans = std::max<size_t>(
            1, events.size() / (3 * leg.cfg.ingestShards));
        leg.name = std::string("shed-policy ") +
                   std::string(online::toString(policy));
        legs.push_back(std::move(leg));
    }
    {
        Leg leg;
        leg.cfg = base;
        leg.cfg.ringCapacitySpans = 2;
        leg.name = "ring-full";
        leg.deterministic = false;
        legs.push_back(std::move(leg));
    }

    for (const Leg &leg : legs) {
        std::string reference;
        size_t ring_full_reference = 0;
        for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
            online::OnlineService service(run.adapter->model(),
                                          run.adapter->encoder(),
                                          run.adapter->profile(),
                                          leg.cfg);
            if (threads == 1) {
                for (const online::SpanEvent &ev : events)
                    service.ingest(ev);
            } else {
                std::vector<std::thread> workers;
                for (size_t t = 0; t < threads; ++t)
                    workers.emplace_back([&, t] {
                        for (size_t i = t; i < events.size();
                             i += threads)
                            service.ingest(events[i]);
                    });
                for (std::thread &w : workers)
                    w.join();
            }
            service.poll(poll_at);
            online::OnlineStats stats = service.stats();
            size_t backlog = service.backlogSpans();
            std::string where = leg.name + " at ingestThreads=" +
                                std::to_string(threads);
            if (stats.spansIngested != events.size())
                return fail(where + ": offered " +
                            std::to_string(events.size()) +
                            " spans but spansIngested=" +
                            std::to_string(stats.spansIngested));
            size_t drops = stats.assembly.droppedOrphan +
                           stats.assembly.droppedDuplicate +
                           stats.assembly.droppedLate +
                           stats.assembly.droppedMalformed +
                           stats.assembly.droppedBackpressure +
                           stats.assembly.droppedRingFull +
                           stats.assembly.droppedShed;
            if (drops != stats.assembly.spansRejected)
                return fail(where + ": drop taxonomy sums to " +
                            std::to_string(drops) +
                            " but spansRejected=" +
                            std::to_string(stats.assembly.spansRejected));
            if (stats.assembly.spansAccepted + drops + backlog !=
                stats.spansIngested)
                return fail(
                    where + ": ledger does not balance: accepted " +
                    std::to_string(stats.assembly.spansAccepted) +
                    " + drops " + std::to_string(drops) +
                    " + backlog " + std::to_string(backlog) +
                    " != sent " + std::to_string(stats.spansIngested));
            if (leg.deterministic) {
                if (stats.assembly.droppedShed == 0)
                    return fail(where + ": shed budget never fired, "
                                "the leg proves nothing");
                std::ostringstream acct;
                acct << stats.assembly.spansAccepted << "/"
                     << stats.assembly.spansRejected << "/" << backlog
                     << " drops " << stats.assembly.droppedOrphan
                     << "," << stats.assembly.droppedDuplicate << ","
                     << stats.assembly.droppedLate << ","
                     << stats.assembly.droppedMalformed << ","
                     << stats.assembly.droppedBackpressure << ","
                     << stats.assembly.droppedRingFull << ","
                     << stats.assembly.droppedShed;
                if (reference.empty())
                    reference = acct.str();
                else if (acct.str() != reference)
                    return fail(where + ": accounting diverges across "
                                "thread counts: " + acct.str() +
                                " vs " + reference);
            } else {
                if (stats.assembly.droppedRingFull == 0)
                    return fail(where + ": tiny ring never "
                                "overflowed, the leg proves nothing");
                if (ring_full_reference == 0)
                    ring_full_reference =
                        stats.assembly.droppedRingFull;
                else if (stats.assembly.droppedRingFull !=
                         ring_full_reference)
                    return fail(where + ": ring-full count is not "
                                "deterministic across thread counts");
            }
        }
    }
    return pass();
}

InvariantResult
checkOnlineSoak(const ScenarioRun &run, const CheckContext &)
{
    // Long-haul soak: tile the storm across an hour-plus of simulated
    // time against a retention budget far below the total volume and
    // require steady state — the watermark advances with every poll,
    // the backlog fully drains at each quiet horizon (the ring never
    // wedges), the store never exceeds its span budget (eviction, not
    // growth, is the steady-state mechanism), and the accounting
    // ledger balances at the end. This is the campaign-sized mirror
    // of `online_suite --soak`, which additionally samples RSS; here
    // the bounded-memory proxies are exact span counts.
    online::OnlineConfig cfg;
    cfg.pipeline = run.scenario.pipelineConfig();
    cfg.detector.bucketUs = 1'000'000;
    cfg.detector.windowBuckets = 64;
    // Incidents pin snapshots alive by design and are exercised by
    // online-differential; the soak measures resource behaviour.
    cfg.detector.minAnomalous = 1'000'000;
    cfg.assembler.latenessUs = 10'000;
    cfg.assembler.quietGapUs = 10'000;
    cfg.ringCapacitySpans = 4096;

    std::vector<online::SpanEvent> events;
    int64_t last_end = 0;
    size_t max_trace_spans = 0;
    for (size_t i = 0; i < run.traces.size(); ++i) {
        int64_t shift = static_cast<int64_t>(i) * 10'000;
        max_trace_spans =
            std::max(max_trace_spans, run.traces[i].spans.size());
        for (trace::Span span : run.traces[i].spans) {
            span.startUs += shift;
            span.endUs += shift;
            last_end = std::max(last_end, span.endUs);
            events.push_back({run.traces[i].traceId, span});
        }
    }
    if (events.empty())
        return pass();
    // Keep two repetitions' worth of spans (and never less than a few
    // whole traces: the store always protects the newest record).
    cfg.retention.maxSpans =
        std::max(events.size() * 2, max_trace_spans * 4);

    online::OnlineService service(run.adapter->model(),
                                  run.adapter->encoder(),
                                  run.adapter->profile(), cfg);
    const int64_t spacing = last_end + 60'000'000;
    const size_t reps = 60; // >= 60 min of simulated time
    int64_t prev_watermark = INT64_MIN;
    size_t delivered = 0;
    for (size_t rep = 0; rep < reps; ++rep) {
        int64_t shift = static_cast<int64_t>(rep) * spacing;
        for (online::SpanEvent ev : events) {
            ev.span.startUs += shift;
            ev.span.endUs += shift;
            service.ingest(std::move(ev));
            ++delivered;
        }
        int64_t poll_at = shift + last_end +
                          cfg.assembler.quietGapUs +
                          cfg.assembler.latenessUs + 1;
        service.poll(poll_at);
        std::string when = "rep " + std::to_string(rep) + "/" +
                           std::to_string(reps);
        if (service.watermarkUs() <= prev_watermark)
            return fail("soak: watermark stalled at " + when);
        prev_watermark = service.watermarkUs();
        size_t backlog = service.backlogSpans();
        if (backlog != 0)
            return fail("soak: backlog of " + std::to_string(backlog) +
                        " spans survived the quiet horizon at " + when);
        if (service.store().totalSpans() > cfg.retention.maxSpans)
            return fail("soak: store holds " +
                        std::to_string(service.store().totalSpans()) +
                        " spans over the " +
                        std::to_string(cfg.retention.maxSpans) +
                        "-span budget at " + when);
    }
    if (service.store().evictions().records == 0)
        return fail("soak: retention never evicted — the budget was "
                    "not exercised");
    online::OnlineStats stats = service.stats();
    if (stats.spansIngested != delivered)
        return fail("soak: delivered " + std::to_string(delivered) +
                    " spans but spansIngested=" +
                    std::to_string(stats.spansIngested));
    if (stats.assembly.spansAccepted + stats.assembly.spansRejected !=
        stats.spansIngested)
        return fail("soak: final ledger does not balance: accepted " +
                    std::to_string(stats.assembly.spansAccepted) +
                    " + rejected " +
                    std::to_string(stats.assembly.spansRejected) +
                    " != sent " + std::to_string(stats.spansIngested));
    return pass();
}

InvariantResult
checkPrunedVsFull(const ScenarioRun &run, const CheckContext &ctx)
{
    // The adaptive pre-pruning layer (DESIGN.md §3.14). Conservative
    // mode promises a guaranteed superset: every trace kept, every
    // candidate the RCA restoration loop could pick retained, so the
    // pruned result is bit-for-bit the full result. Aggressive mode
    // only promises structural sanity (exemplar inheritance, sorted
    // candidate sets, honest accounting) — its accuracy cost is
    // measured by the EXPERIMENTS.md ablation, not asserted here.
    core::PipelineConfig cfg = run.scenario.pipelineConfig();
    core::PipelineResult full = run.analyze(cfg);
    std::vector<std::pair<std::string, size_t>> full_rank =
        core::aggregateRootCauses(full);

    core::SleuthPipeline pipeline(run.adapter->model(),
                                  run.adapter->encoder(),
                                  run.adapter->profile(), cfg);

    core::PruneConfig conservative;
    conservative.mode = core::PruneConfig::Mode::Conservative;
    core::RcaPruner pruner(run.adapter->profile(), conservative,
                           cfg.rca);
    core::PrunePlan plan = pruner.plan(run.traces, run.slos);
    if (plan.tracesTotal != run.traces.size() ||
        plan.tracesKept != run.traces.size())
        return fail("conservative plan pruned traces: kept " +
                    std::to_string(plan.tracesKept) + " of " +
                    std::to_string(plan.tracesTotal));
    if (ctx.mutation == "overprune-root-cause") {
        // Test-only over-aggressive prune: drop the full run's top
        // aggregated root cause from every candidate set — the exact
        // failure mode this invariant exists to catch.
        if (full_rank.empty())
            return fail("mutation overprune-root-cause: the full run "
                        "produced no root cause to drop, the leg "
                        "proves nothing");
        const std::string &top = full_rank[0].first;
        for (std::vector<std::string> &cand : plan.candidates)
            cand.erase(std::remove(cand.begin(), cand.end(), top),
                       cand.end());
    }
    core::PipelineResult pruned =
        pipeline.analyzeWithPlan(run.traces, run.slos, plan);
    std::string diff = diffResults(full, pruned);
    if (!diff.empty())
        return fail("conservative pruned run diverges from the full "
                    "run: " + diff);
    if (core::aggregateRootCauses(pruned) != full_rank)
        return fail("conservative pruned run changed the aggregated "
                    "root-cause ranking");
    if (pruned.prunedTraces != 0 || pruned.pruneTraceKeepRatio != 1.0)
        return fail("conservative run misreported prune accounting");

    core::PruneConfig aggressive;
    aggressive.mode = core::PruneConfig::Mode::Aggressive;
    aggressive.aggressiveness = 0.5;
    core::RcaPruner cutter(run.adapter->profile(), aggressive,
                           cfg.rca);
    core::PrunePlan cut = cutter.plan(run.traces, run.slos);
    const size_t n = run.traces.size();
    if (cut.keep.size() != n || cut.inheritFrom.size() != n ||
        cut.restricted.size() != n || cut.candidates.size() != n)
        return fail("aggressive plan has inconsistent sizes");
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
        if (cut.keep[i]) {
            ++kept;
            if (cut.inheritFrom[i] != -1)
                return fail("kept trace " + std::to_string(i) +
                            " carries an exemplar");
            continue;
        }
        int ex = cut.inheritFrom[i];
        if (ex < 0 || static_cast<size_t>(ex) >= n || !cut.keep[ex])
            return fail("pruned trace " + std::to_string(i) +
                        " inherits from a non-kept exemplar");
    }
    if (kept != cut.tracesKept || cut.tracesTotal != n)
        return fail("aggressive plan trace accounting is wrong");
    for (size_t i = 0; i < n; ++i) {
        if (!std::is_sorted(cut.candidates[i].begin(),
                            cut.candidates[i].end()))
            return fail("candidate set of trace " + std::to_string(i) +
                        " is not sorted");
        if (!cut.restricted[i] && !cut.candidates[i].empty())
            return fail("unrestricted trace " + std::to_string(i) +
                        " carries candidates");
    }
    core::PipelineResult agg =
        pipeline.analyzeWithPlan(run.traces, run.slos, cut);
    if (agg.prunedTraces != n - kept)
        return fail("aggressive run prunedTraces=" +
                    std::to_string(agg.prunedTraces) + ", expected " +
                    std::to_string(n - kept));
    for (size_t i = 0; i < n; ++i) {
        if (cut.keep[i])
            continue;
        const core::RcaResult &x = agg.perTrace[i];
        const core::RcaResult &y =
            agg.perTrace[static_cast<size_t>(cut.inheritFrom[i])];
        if (x.services != y.services || x.error != y.error)
            return fail("pruned trace " + std::to_string(i) +
                        " did not inherit its exemplar's verdict");
    }
    return pass();
}

InvariantResult
checkIncrementalRepoll(const ScenarioRun &run, const CheckContext &)
{
    // The cross-poll incremental cache (DESIGN.md §3.14): every cached
    // value is the output of a pure function of fingerprinted inputs,
    // so a warm analysis must be bitwise identical to a full
    // recompute — over the identical batch (the unchanged-snapshot
    // fast path), over a slid window sharing most traces, and after a
    // content mutation that must invalidate and fall back.
    core::PipelineConfig cfg = run.scenario.pipelineConfig();
    core::SleuthPipeline pipeline(run.adapter->model(),
                                  run.adapter->encoder(),
                                  run.adapter->profile(), cfg);
    core::PipelineResult fresh = run.analyze(cfg);

    core::PipelineCache cache;
    core::PipelineResult cold =
        pipeline.analyze(run.traces, run.slos, nullptr, &cache);
    std::string diff = diffResults(fresh, cold);
    if (!diff.empty())
        return fail("cold-cache run diverges from the cache-free "
                    "run: " + diff);

    core::PipelineResult warm =
        pipeline.analyze(run.traces, run.slos, nullptr, &cache);
    diff = diffResults(fresh, warm);
    if (!diff.empty())
        return fail("warm-cache re-poll diverges from the full "
                    "recompute: " + diff);
    if (cache.stats().batchHits == 0)
        return fail("identical re-poll missed the unchanged-snapshot "
                    "fast path");

    // Growing window: an open incident gains late traces between
    // polls, so the stored distance matrix must be reused as a packed
    // prefix (DESIGN.md §3.14) and the verdicts must still equal a
    // cache-free run of the grown batch.
    if (run.traces.size() >= 4) {
        core::PipelineCache grow_cache;
        const size_t half = run.traces.size() / 2;
        std::vector<trace::Trace> head(run.traces.begin(),
                                       run.traces.begin() +
                                           static_cast<long>(half));
        std::vector<int64_t> head_slos(run.slos.begin(),
                                       run.slos.begin() +
                                           static_cast<long>(half));
        pipeline.analyze(head, head_slos, nullptr, &grow_cache);
        core::PipelineResult inc = pipeline.analyze(
            run.traces, run.slos, nullptr, &grow_cache);
        diff = diffResults(fresh, inc);
        if (!diff.empty())
            return fail("growing-window re-poll diverges from the "
                        "full recompute: " + diff);
        // With the default Jaccard distance, clustering on, and every
        // trace well-formed, the grown poll must actually take the
        // matrix-prefix fast path (half >= 2 guarantees the head
        // stored a matrix).
        bool prefix_expected =
            cfg.clustering && half >= 2 &&
            cfg.prune.mode == core::PruneConfig::Mode::Off &&
            cfg.traceDistance ==
                core::PipelineConfig::TraceDistanceKind::
                    WeightedJaccard &&
            fresh.skippedTraces == 0;
        if (prefix_expected &&
            grow_cache.stats().matrixPrefixHits == 0)
            return fail("growing-window re-poll missed the "
                        "matrix-prefix fast path");
    }

    // Slid window: a later poll typically sees the same storm minus
    // its oldest trace; the delta must be the only recomputation and
    // the answer must still match a cache-free run of the window.
    if (run.traces.size() >= 2) {
        std::vector<trace::Trace> slid(run.traces.begin() + 1,
                                       run.traces.end());
        std::vector<int64_t> slid_slos(run.slos.begin() + 1,
                                       run.slos.end());
        core::PipelineCache::Stats before = cache.stats();
        core::PipelineResult inc =
            pipeline.analyze(slid, slid_slos, nullptr, &cache);
        diff = diffResults(run.analyzeBatch(cfg, slid, slid_slos),
                           inc);
        if (!diff.empty())
            return fail("incremental slid-window re-poll diverges "
                        "from the full recompute: " + diff);
        core::PipelineCache::Stats after = cache.stats();
        if (after.encodingHits + after.verdictHits <=
            before.encodingHits + before.verdictHits)
            return fail("slid-window re-poll reused nothing from the "
                        "cache");
    }

    // Mutated trace (new content between polls): the fingerprint
    // changes, the stale entry must be invalidated, and the re-poll
    // must equal a full recompute of the mutated batch.
    std::vector<trace::Trace> mutated = run.traces;
    if (!mutated.empty() && !mutated[0].spans.empty()) {
        mutated[0].spans[0].endUs += 1;
        size_t before_inval = cache.stats().invalidations;
        core::PipelineResult inc =
            pipeline.analyze(mutated, run.slos, nullptr, &cache);
        diff = diffResults(run.analyzeBatch(cfg, mutated, run.slos),
                           inc);
        if (!diff.empty())
            return fail("re-poll after a trace mutation diverges from "
                        "the full recompute: " + diff);
        if (cache.stats().invalidations <= before_inval)
            return fail("mutated trace did not invalidate its cache "
                        "entry");
    }
    return pass();
}

// ---------------------------------------------------------------------
// synth-clone-fidelity: profile the scenario's application from its
// own healthy traces, reconstruct it via synth::inferAppModel, and
// require the clone to reproduce the source's storm onset and RCA
// verdict under the same network-delay fault, within declared
// tolerances:
//   - the clone validates, its JSON round trip is bitwise stable, and
//     it invents no service the source does not have;
//   - fault-free SLO-violation fraction <= 0.12 on both legs;
//   - when the source leg storms (violation delta >= 0.10 over its
//     healthy floor), the clone's delta must reach 35% of the
//     source's (and at least 0.05);
//   - the two legs' fault-phase violation fractions differ by <= 0.35;
//   - when the source leg's top-3 aggregated root causes contain the
//     faulted service, the clone leg's top-3 must too.
// A network-delay fault is used because network hops are directly
// inferable from span timestamps; per-call resources are not, so a
// cpu/memory/disk stress would not transfer to the clone by design.

InvariantResult
checkSynthCloneFidelity(const ScenarioRun &run, const CheckContext &)
{
    const Scenario &s = run.scenario;

    // --- Profile: a healthy corpus simulated from the source app. ---
    const size_t kProfile = 300;
    sim::Simulator profiler(run.app, *run.cluster,
                            {.seed = s.seed ^ 0x1f2au});
    std::vector<trace::Trace> profile;
    std::vector<int64_t> profile_slos;
    profile.reserve(kProfile);
    for (size_t i = 0; i < kProfile; ++i) {
        sim::SimResult r = profiler.simulateOne();
        profile_slos.push_back(
            run.app.flows[static_cast<size_t>(r.flowIndex)].sloUs);
        profile.push_back(std::move(r.trace));
    }

    synth::InferOptions opts;
    opts.name = run.app.name + "-clone";
    synth::InferStats stats;
    synth::AppConfig clone =
        synth::inferAppModel(profile, profile_slos, opts, &stats);
    if (stats.tracesUsed == 0)
        return fail("inference consumed none of the " +
                    std::to_string(kProfile) + " profiled traces");

    // --- Structural fidelity. ---
    std::string defect = clone.validationError();
    if (!defect.empty())
        return fail("inferred clone fails validation: " + defect);
    std::string first = toJson(clone).dump(2);
    std::string err;
    util::Json doc = util::Json::parse(first, &err);
    if (!err.empty())
        return fail("clone JSON does not re-parse: " + err);
    synth::AppConfig reloaded;
    if (!synth::tryAppFromJson(doc, &reloaded, &err))
        return fail("clone JSON does not reload: " + err);
    if (toJson(reloaded).dump(2) != first)
        return fail("clone JSON round trip is not bitwise stable");
    std::set<std::string> source_names = run.serviceNames();
    for (const synth::ServiceConfig &svc : clone.services)
        if (source_names.count(svc.name) == 0)
            return fail("clone invented service '" + svc.name + "'");

    // --- Fault target: the service whose network legs touch the
    // largest fraction of profiled traces (client side or non-root
    // server side; ties break lexicographically). ---
    std::map<std::string, size_t> touched;
    for (const trace::Trace &t : profile) {
        std::set<std::string> here;
        for (const trace::Span &sp : t.spans) {
            bool caller = sp.kind == trace::SpanKind::Client ||
                          sp.kind == trace::SpanKind::Producer;
            if (caller || !sp.parentSpanId.empty())
                here.insert(sp.service);
        }
        for (const std::string &name : here)
            ++touched[name];
    }
    std::string target;
    size_t target_count = 0;
    for (const auto &[name, count] : touched) {
        if (count > target_count) {
            target = name;
            target_count = count;
        }
    }
    if (target.empty())
        return fail("no faultable service observed in the profile");
    double affected =
        static_cast<double>(target_count) / profile.size();

    // All replicas of the target get the delay, per leg, using that
    // leg's own replica count — the svc-ctr-N naming is stable across
    // ClusterModel builds, so the plan transfers by construction.
    auto planFor = [&](const synth::AppConfig &app) {
        chaos::FaultPlan plan;
        for (const synth::ServiceConfig &svc : app.services) {
            if (svc.name != target)
                continue;
            for (int r = 0; r < svc.replicas; ++r) {
                chaos::FaultSpec f;
                f.type = chaos::FaultType::NetworkDelay;
                f.scope = chaos::FaultScope::Container;
                f.target = svc.name + "-ctr-" + std::to_string(r);
                f.latencyMultiplier = 48.0;
                plan.faults.push_back(std::move(f));
            }
        }
        return plan;
    };

    sim::ClusterModel clone_cluster(clone, s.clusterNodes,
                                    s.seed ^ 0xc1u);
    sim::Simulator::calibrateSlos(clone, clone_cluster, 120, 99.0,
                                  s.seed ^ 0xca1u);

    // --- Measure one leg: healthy and fault-phase SLO-violation
    // fractions plus a small anomalous sample for the RCA check. ---
    struct Leg
    {
        double healthy = 0.0;
        double faulty = 0.0;
        std::vector<trace::Trace> anomalous;
        std::vector<int64_t> anomalousSlos;
    };
    const size_t kLeg = 120;
    auto measure = [&](const synth::AppConfig &app,
                       const sim::ClusterModel &cluster) {
        Leg leg;
        sim::Simulator calm(app, cluster, {.seed = s.seed ^ 0x7ea1u});
        size_t bad = 0;
        for (size_t i = 0; i < kLeg; ++i) {
            sim::SimResult r = calm.simulateOne();
            int64_t slo =
                app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
            if (r.violatesSlo(slo))
                ++bad;
        }
        leg.healthy = static_cast<double>(bad) / kLeg;
        sim::Simulator storm(app, cluster, {.seed = s.seed ^ 0x7ea2u},
                             planFor(app));
        bad = 0;
        for (size_t i = 0; i < kLeg; ++i) {
            sim::SimResult r = storm.simulateOne();
            int64_t slo =
                app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
            if (!r.violatesSlo(slo))
                continue;
            ++bad;
            if (leg.anomalous.size() < 10) {
                leg.anomalous.push_back(std::move(r.trace));
                leg.anomalousSlos.push_back(slo);
            }
        }
        leg.faulty = static_cast<double>(bad) / kLeg;
        return leg;
    };
    Leg src = measure(run.app, *run.cluster);
    Leg cln = measure(clone, clone_cluster);

    // --- Storm-onset fidelity. ---
    if (src.healthy > 0.12)
        return fail("source healthy leg violates its own SLOs (" +
                    std::to_string(src.healthy) + " > 0.12)");
    if (cln.healthy > 0.12)
        return fail("clone healthy leg violates its calibrated SLOs (" +
                    std::to_string(cln.healthy) + " > 0.12)");
    double src_delta = src.faulty - src.healthy;
    double cln_delta = cln.faulty - cln.healthy;
    if (src_delta >= 0.10 &&
        cln_delta < std::max(0.05, 0.35 * src_delta))
        return fail("source storms on '" + target + "' (delta " +
                    std::to_string(src_delta) +
                    ", affected fraction " + std::to_string(affected) +
                    ") but the clone does not (delta " +
                    std::to_string(cln_delta) + ")");
    if (std::abs(src.faulty - cln.faulty) > 0.35)
        return fail("fault-phase violation fractions diverge: source " +
                    std::to_string(src.faulty) + " vs clone " +
                    std::to_string(cln.faulty) + " (tolerance 0.35)");

    // --- RCA-verdict fidelity: when the source leg's storm pins the
    // faulted service in its top-3, the clone's storm must as well
    // (same adapter: the clone emits the source's vocabulary). ---
    core::PipelineConfig cfg = s.pipelineConfig();
    cfg.clustering = false;
    auto topkHasTarget = [&](const Leg &leg) {
        core::PipelineResult res =
            run.analyzeBatch(cfg, leg.anomalous, leg.anomalousSlos);
        auto ranked = aggregateRootCauses(res);
        for (size_t i = 0; i < ranked.size() && i < 3; ++i)
            if (ranked[i].first == target)
                return true;
        return false;
    };
    if (src.anomalous.size() >= 3 && cln.anomalous.size() >= 3 &&
        topkHasTarget(src) && !topkHasTarget(cln))
        return fail("source RCA pins '" + target +
                    "' in its top-3 root causes but the clone's "
                    "storm does not");
    return pass();
}

} // namespace

const std::vector<Invariant> &
invariantRegistry()
{
    static const std::vector<Invariant> registry = {
        {"determinism-threads",
         "results are bitwise identical at 1/2/8 worker threads",
         checkThreadDeterminism},
        {"permutation-invariance",
         "verdicts and the cluster partition survive batch reordering",
         checkPermutationInvariance},
        {"json-roundtrip",
         "serialize → parse → reanalyze reproduces the exact result",
         checkJsonRoundTrip},
        {"skipped-accounting",
         "injected malformed spans are counted, quarantined, and "
         "excluded from distance accounting",
         checkSkippedAccounting},
        {"accuracy-floor",
         "top-k hit rate vs chaos ground truth clears the tier floor",
         checkAccuracyFloor},
        {"baseline-differential",
         "pipeline accuracy is sane against the max-duration baseline",
         checkBaselineDifferential},
        {"storage-roundtrip",
         "collector ingest → store → reload → bitwise-equal analysis",
         checkStorageRoundTrip},
        {"online-differential",
         "streaming the storm through the online layer reproduces the "
         "batch pipeline at 1/2/8 ingest threads, with and without "
         "SIMD dispatch, under every shed policy",
         checkOnlineDifferential},
        {"drop-accounting",
         "sent == assembled + Σ(drops by reason) + backlog, bitwise "
         "at 1/2/8 producer threads per shed policy, ring-full "
         "included",
         checkDropAccounting},
        {"online-soak",
         "an hour-plus simulated stream holds steady state: watermark "
         "advances, backlog drains, store obeys its retention budget",
         checkOnlineSoak},
        {"pruned-vs-full",
         "conservative pre-pruning reproduces the full result "
         "bit-for-bit; aggressive plans are structurally sound",
         checkPrunedVsFull},
        {"incremental-repoll",
         "warm-cache re-polls (identical, slid, and mutated windows) "
         "are bitwise equal to a full recompute",
         checkIncrementalRepoll},
        {"crash-recovery",
         "kill the durable service mid-storm at 1/2/8 ingest threads "
         "and restart from disk: the recovered run is bitwise equal "
         "to the uninterrupted run",
         checkCrashRecovery},
        {"wal-torn-tail",
         "truncate or corrupt the WAL at arbitrary offsets: recovery "
         "always rebuilds exactly the committed-poll prefix, never "
         "crashes",
         checkWalTornTail},
        {"synth-clone-fidelity",
         "an app inferred from the scenario's own healthy traces "
         "validates, round-trips bitwise, and reproduces the source's "
         "storm onset (healthy legs <= 0.12 violations, onset delta "
         ">= 35% of the source's, fault-phase gap <= 0.35) and top-3 "
         "RCA verdict under the same network-delay fault",
         checkSynthCloneFidelity},
    };
    return registry;
}

const Invariant *
tryFindInvariant(const std::string &name)
{
    for (const Invariant &inv : invariantRegistry())
        if (inv.name == name)
            return &inv;
    return nullptr;
}

const Invariant &
findInvariant(const std::string &name)
{
    const Invariant *inv = tryFindInvariant(name);
    if (inv != nullptr)
        return *inv;
    std::string known;
    for (const Invariant &i : invariantRegistry()) {
        if (!known.empty())
            known += ", ";
        known += i.name;
    }
    util::fatal("unknown invariant '", name, "' (known: ", known, ")");
}

const std::vector<std::string> &
knownMutations()
{
    static const std::vector<std::string> mutations = {
        "miscount-skipped",
        "overprune-root-cause",
        "skip-eviction-replay",
    };
    return mutations;
}

} // namespace sleuth::campaign
