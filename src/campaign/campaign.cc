#include "campaign.h"

#include "util/logging.h"

namespace sleuth::campaign {

bool
ScenarioOutcome::allPassed() const
{
    for (const InvariantOutcome &c : checks)
        if (!c.pass)
            return false;
    return true;
}

bool
CampaignReport::allPassed() const
{
    for (const ScenarioOutcome &o : outcomes)
        if (!o.allPassed())
            return false;
    return true;
}

size_t
CampaignReport::checksRun() const
{
    size_t n = 0;
    for (const ScenarioOutcome &o : outcomes)
        n += o.checks.size();
    return n;
}

size_t
CampaignReport::failures() const
{
    size_t n = 0;
    for (const ScenarioOutcome &o : outcomes)
        for (const InvariantOutcome &c : o.checks)
            if (!c.pass)
                ++n;
    return n;
}

size_t
CampaignReport::degenerateScenarios() const
{
    size_t n = 0;
    for (const ScenarioOutcome &o : outcomes)
        if (o.degenerate)
            ++n;
    return n;
}

std::map<std::string, std::pair<size_t, size_t>>
CampaignReport::perInvariant() const
{
    std::map<std::string, std::pair<size_t, size_t>> counts;
    for (const ScenarioOutcome &o : outcomes) {
        for (const InvariantOutcome &c : o.checks) {
            auto &[passed, failed] = counts[c.invariant];
            (c.pass ? passed : failed) += 1;
        }
    }
    return counts;
}

util::Json
CampaignReport::benchJson(double elapsed_seconds) const
{
    auto row = [](const std::string &metric, double value,
                  const std::string &unit) {
        util::Json r = util::Json::object();
        r.set("metric", metric);
        r.set("value", value);
        r.set("unit", unit);
        return r;
    };
    util::Json rows = util::Json::array();
    rows.push(row("campaign_scenarios",
                  static_cast<double>(outcomes.size()), "count"));
    rows.push(row("campaign_checks",
                  static_cast<double>(checksRun()), "count"));
    rows.push(row("campaign_failures",
                  static_cast<double>(failures()), "count"));
    rows.push(row("campaign_degenerate",
                  static_cast<double>(degenerateScenarios()),
                  "count"));
    rows.push(row("campaign_elapsed", elapsed_seconds, "s"));
    if (!outcomes.empty())
        rows.push(row("campaign_scenario_mean",
                      elapsed_seconds /
                          static_cast<double>(outcomes.size()),
                      "s"));
    return rows;
}

CampaignReport
runCampaign(const CampaignParams &params)
{
    CampaignReport report;
    report.params = params;
    util::Rng rng(params.seed);
    for (size_t s = 0; s < params.scenarios; ++s) {
        util::Rng scenario_rng = rng.fork(s);
        ScenarioOutcome outcome;
        outcome.scenario = drawScenario(scenario_rng);
        std::unique_ptr<ScenarioRun> run =
            buildScenario(outcome.scenario);
        if (run->degenerate) {
            outcome.degenerate = true;
            outcome.degenerateReason = run->degenerateReason;
            report.outcomes.push_back(std::move(outcome));
            continue;
        }
        CheckContext ctx{params.mutation};
        for (const Invariant &inv : invariantRegistry()) {
            InvariantResult r = inv.check(*run, ctx);
            outcome.checks.push_back(
                {inv.name, r.pass, r.detail});
            if (r.pass)
                continue;
            util::warn("campaign: scenario ", s, " (seed ",
                       outcome.scenario.seed, ") failed ", inv.name,
                       ": ", r.detail);
            if (!params.shrink)
                continue;
            ShrinkStats stats;
            ReproCase repro;
            repro.invariant = inv.name;
            repro.mutation = params.mutation;
            repro.scenario =
                shrinkScenario(outcome.scenario, inv.name,
                               params.mutation, params.maxShrinkRuns,
                               &stats);
            repro.note = r.detail + " (shrunk in " +
                         std::to_string(stats.runs) + " runs, " +
                         std::to_string(stats.accepted) +
                         " edits accepted)";
            report.repros.push_back(std::move(repro));
        }
        report.outcomes.push_back(std::move(outcome));
    }
    return report;
}

InvariantResult
replayCase(const ReproCase &c)
{
    return runInvariantOnScenario(c.scenario, c.invariant, c.mutation);
}

} // namespace sleuth::campaign
