#pragma once

/**
 * @file
 * Campaign scenarios: the generative parameters of one randomized
 * end-to-end incident (application, deployment, chaos fault plan,
 * pipeline configuration) plus the shrink masks the failing-scenario
 * minimizer edits. A Scenario is pure data — fully serializable to
 * JSON and deterministically expandable into a ScenarioRun — so a
 * failing case can be shipped as a self-contained repro file and
 * re-executed bit-for-bit by the campaign_replay target.
 */

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "core/pipeline.h"
#include "eval/harness.h"
#include "sim/cluster_model.h"
#include "util/json.h"
#include "util/rng.h"

namespace sleuth::campaign {

/** Generative parameters of one campaign scenario. */
struct Scenario
{
    /** Master seed; every stochastic stage forks from it. */
    uint64_t seed = 1;

    // --- Application + deployment ---
    /** Synthetic application size (total RPCs). */
    int numRpcs = 24;
    /** Cluster nodes the replicas are placed on. */
    int clusterNodes = 8;
    /**
     * Non-empty: use a pinned catalog application ("sockshop" or
     * "socialnetwork") instead of generating one; numRpcs is then
     * ignored. Used by the synth-clone-fidelity corpus pins.
     */
    std::string catalogApp;

    // --- Training ---
    /** Fault-free + faulty traces the model is fitted on. */
    size_t trainTraces = 64;
    /** Training epochs (small: campaign scenarios must stay cheap). */
    int trainEpochs = 3;

    // --- Chaos + storm ---
    /** Concurrent faults injected by the plan. */
    size_t faultCount = 2;
    /** Blast radius of every fault in the plan. */
    chaos::FaultScope faultScope = chaos::FaultScope::Container;
    /** Anomalous traces harvested for the incident storm. */
    size_t numQueries = 12;

    // --- Pipeline configuration under test ---
    bool clustering = true;
    core::PipelineConfig::Algorithm algorithm =
        core::PipelineConfig::Algorithm::Hdbscan;
    int minClusterSize = 4;
    int minSamples = 2;
    double clusterSelectionEpsilon = 0.0;
    double dbscanEps = 0.4;
    int dbscanMinPts = 3;
    double maxRepresentativeDistance = 0.6;

    // --- Shrink masks (empty = untouched) ---
    /** Harvested-trace indices kept by the shrinker (empty = all). */
    std::vector<size_t> keptTraces;
    /** Planned-fault indices dropped by the shrinker. */
    std::vector<size_t> droppedFaults;

    /** The PipelineConfig this scenario runs under. */
    core::PipelineConfig pipelineConfig() const;

    /** Structural equality (used by serialization tests). */
    bool operator==(const Scenario &other) const;
};

/** Draw a randomized scenario from a seeded stream. */
Scenario drawScenario(util::Rng &rng);

/** Serialize a scenario. */
util::Json toJson(const Scenario &s);

/** Deserialize a scenario; fatal() on malformed input. */
Scenario scenarioFromJson(const util::Json &doc);

/**
 * A fully materialized scenario: the simulated incident storm, its
 * scope-aware ground truth, and a fitted Sleuth adapter, ready for
 * invariant checks. Expensive to build (simulation + training), cheap
 * to analyze repeatedly.
 */
struct ScenarioRun
{
    Scenario scenario;
    synth::AppConfig app;
    std::unique_ptr<sim::ClusterModel> cluster;
    chaos::FaultPlan plan;
    std::vector<trace::Trace> trainCorpus;

    /** The storm: anomalous traces with per-trace SLOs and truth. */
    std::vector<trace::Trace> traces;
    std::vector<int64_t> slos;
    std::vector<std::set<std::string>> truthServices;
    std::vector<std::set<std::string>> truthContainers;

    /** Fitted model + encoder + profile behind the pipeline. */
    std::unique_ptr<eval::SleuthAdapter> adapter;

    /**
     * True when the scenario could not produce a single anomalous
     * trace (e.g. the shrinker dropped every fault); invariants are
     * vacuous then and the campaign skips the scenario.
     */
    bool degenerate = false;
    std::string degenerateReason;

    /** Run the pipeline over the storm with an explicit config. */
    core::PipelineResult
    analyze(const core::PipelineConfig &config) const;

    /** As analyze(), over a caller-supplied batch (same model). */
    core::PipelineResult
    analyzeBatch(const core::PipelineConfig &config,
                 const std::vector<trace::Trace> &batch,
                 const std::vector<int64_t> &batch_slos) const;

    /** Service names of the application (prediction sanity checks). */
    std::set<std::string> serviceNames() const;
};

/**
 * Expand a scenario deterministically: generate the application,
 * place it, calibrate SLOs, fit the adapter on a mostly-healthy
 * corpus, plan the faults, and harvest the storm. Identical scenarios
 * always produce identical runs.
 */
std::unique_ptr<ScenarioRun> buildScenario(const Scenario &s);

} // namespace sleuth::campaign
