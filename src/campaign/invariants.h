#pragma once

/**
 * @file
 * The campaign's metamorphic-invariant registry. Every invariant is a
 * named predicate over a materialized ScenarioRun: it re-analyzes the
 * scenario's incident storm under some transformation (more threads, a
 * permuted batch, a serialize→parse round trip, injected malformed
 * spans, ...) and checks that the pipeline's answer is preserved — or
 * that an absolute property (accuracy floor, baseline differential)
 * holds. Invariants must be deterministic functions of the run: the
 * campaign replays failing cases bit-for-bit.
 */

#include <functional>
#include <string>
#include <vector>

#include "campaign/scenario.h"

namespace sleuth::campaign {

/** Outcome of one invariant check. */
struct InvariantResult
{
    bool pass = true;
    /** Human-readable failure description (empty on pass). */
    std::string detail;
};

/**
 * Test-only fault injection: a named mutation deliberately breaking
 * one invariant so the shrink → serialize → replay loop can be
 * exercised end-to-end (the campaign_test mutation smoke check).
 * Production campaigns run with an empty mutation.
 */
struct CheckContext
{
    std::string mutation;
};

/** One registered invariant. */
struct Invariant
{
    std::string name;
    /** One-line description shown by campaign_run --list. */
    std::string description;
    std::function<InvariantResult(const ScenarioRun &,
                                  const CheckContext &)>
        check;
};

/** The registry (construct-on-first-use; order is the check order). */
const std::vector<Invariant> &invariantRegistry();

/** Look up an invariant by name; nullptr when unknown. */
const Invariant *tryFindInvariant(const std::string &name);

/** Look up an invariant by name; fatal() (listing the known
    invariants) when unknown. */
const Invariant &findInvariant(const std::string &name);

/** Mutation names understood by CheckContext (for validation). */
const std::vector<std::string> &knownMutations();

} // namespace sleuth::campaign
