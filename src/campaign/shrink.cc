#include "shrink.h"

#include <algorithm>

#include "util/logging.h"

namespace sleuth::campaign {

util::Json
toJson(const ReproCase &c)
{
    util::Json doc = util::Json::object();
    doc.set("version", c.version);
    doc.set("invariant", c.invariant);
    if (!c.mutation.empty())
        doc.set("mutation", c.mutation);
    doc.set("expect", c.expect);
    doc.set("scenario", toJson(c.scenario));
    if (!c.note.empty())
        doc.set("note", c.note);
    return doc;
}

ReproCase
reproFromJson(const util::Json &doc)
{
    ReproCase c;
    c.version = static_cast<int>(doc.at("version").asInt());
    if (c.version != 1)
        util::fatal("unsupported repro version ", c.version);
    c.invariant = doc.at("invariant").asString();
    findInvariant(c.invariant); // validate early, fatal() when unknown
    if (doc.has("mutation"))
        c.mutation = doc.at("mutation").asString();
    c.expect = doc.has("expect") ? doc.at("expect").asString() : "fail";
    if (c.expect != "pass" && c.expect != "fail")
        util::fatal("repro expect must be pass or fail, got '",
                    c.expect, "'");
    c.scenario = scenarioFromJson(doc.at("scenario"));
    if (doc.has("note"))
        c.note = doc.at("note").asString();
    return c;
}

InvariantResult
runInvariantOnScenario(const Scenario &s, const std::string &invariant,
                       const std::string &mutation)
{
    const Invariant &inv = findInvariant(invariant);
    std::unique_ptr<ScenarioRun> run = buildScenario(s);
    if (run->degenerate)
        return {true, "degenerate: " + run->degenerateReason};
    return inv.check(*run, CheckContext{mutation});
}

namespace {

/**
 * Shared shrink state: the current (still-failing) scenario plus the
 * run budget. accept() commits a candidate edit when the invariant
 * still fails on it.
 */
struct Shrinker
{
    Scenario current;
    std::string invariant;
    std::string mutation;
    size_t max_runs;
    ShrinkStats stats;

    bool
    budgetLeft() const
    {
        return stats.runs < max_runs;
    }

    /** True (and commits) when the candidate still fails. */
    bool
    accept(const Scenario &candidate)
    {
        if (!budgetLeft())
            return false;
        ++stats.runs;
        InvariantResult r =
            runInvariantOnScenario(candidate, invariant, mutation);
        if (r.pass)
            return false;
        current = candidate;
        ++stats.accepted;
        return true;
    }
};

/** Drop planned faults one at a time (highest leverage first). */
bool
shrinkFaults(Shrinker &sh)
{
    bool progress = false;
    for (size_t idx = 0; idx < sh.current.faultCount; ++idx) {
        const std::vector<size_t> &dropped = sh.current.droppedFaults;
        if (std::find(dropped.begin(), dropped.end(), idx) !=
            dropped.end())
            continue;
        Scenario candidate = sh.current;
        candidate.droppedFaults.push_back(idx);
        progress |= sh.accept(candidate);
    }
    return progress;
}

/** Shrink the generative size knobs toward their floors. */
bool
shrinkSizes(Shrinker &sh)
{
    bool progress = false;
    static const int kRpcTiers[] = {12, 16, 24, 32};
    for (int tier : kRpcTiers) {
        if (tier >= sh.current.numRpcs)
            break;
        Scenario candidate = sh.current;
        candidate.numRpcs = tier;
        // The harvested storm is regenerated from scratch for a new
        // application; the old trace mask is meaningless.
        candidate.keptTraces.clear();
        if (sh.accept(candidate)) {
            progress = true;
            break;
        }
    }
    struct SizeEdit
    {
        size_t Scenario::*field;
        size_t floor;
        bool clearsMask;
    };
    static const SizeEdit kSizeEdits[] = {
        {&Scenario::trainTraces, 48, false},
        {&Scenario::numQueries, 4, true},
    };
    for (const SizeEdit &edit : kSizeEdits) {
        while (sh.current.*edit.field > edit.floor &&
               sh.budgetLeft()) {
            Scenario candidate = sh.current;
            size_t next = std::max(edit.floor,
                                   (sh.current.*edit.field) / 2);
            candidate.*edit.field = next;
            if (edit.clearsMask)
                candidate.keptTraces.clear();
            if (!sh.accept(candidate))
                break;
            progress = true;
        }
    }
    return progress;
}

/** Bisect the remaining config fields toward scenario defaults. */
bool
shrinkConfig(Shrinker &sh)
{
    bool progress = false;
    const Scenario defaults;
    auto tryEdit = [&](auto field, auto value) {
        if (sh.current.*field == value)
            return;
        Scenario candidate = sh.current;
        candidate.*field = value;
        progress |= sh.accept(candidate);
    };
    tryEdit(&Scenario::clusterNodes, defaults.clusterNodes);
    tryEdit(&Scenario::trainEpochs, 2);
    tryEdit(&Scenario::faultScope, chaos::FaultScope::Container);
    tryEdit(&Scenario::clustering, defaults.clustering);
    tryEdit(&Scenario::algorithm, defaults.algorithm);
    tryEdit(&Scenario::minClusterSize, defaults.minClusterSize);
    tryEdit(&Scenario::clusterSelectionEpsilon,
            defaults.clusterSelectionEpsilon);
    tryEdit(&Scenario::dbscanEps, defaults.dbscanEps);
    tryEdit(&Scenario::maxRepresentativeDistance,
            defaults.maxRepresentativeDistance);
    return progress;
}

/**
 * Delta-debug the harvested-trace mask: try dropping chunks of the
 * kept traces, halving the chunk size down to single traces.
 */
bool
shrinkTraces(Shrinker &sh)
{
    // Materialize the effective kept list.
    std::vector<size_t> kept = sh.current.keptTraces;
    if (kept.empty()) {
        if (!sh.budgetLeft())
            return false;
        std::unique_ptr<ScenarioRun> run = buildScenario(sh.current);
        ++sh.stats.runs;
        kept.resize(run->traces.size());
        for (size_t i = 0; i < kept.size(); ++i)
            kept[i] = i;
    }
    bool progress = false;
    for (size_t chunk = std::max<size_t>(kept.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        for (size_t start = 0;
             start < kept.size() && kept.size() > 1;) {
            if (!sh.budgetLeft())
                return progress;
            std::vector<size_t> reduced;
            for (size_t i = 0; i < kept.size(); ++i)
                if (i < start || i >= start + chunk)
                    reduced.push_back(kept[i]);
            if (reduced.empty()) {
                start += chunk;
                continue;
            }
            Scenario candidate = sh.current;
            candidate.keptTraces = reduced;
            if (sh.accept(candidate)) {
                kept = std::move(reduced);
                progress = true;
                // Re-test the same offset: a new chunk slid into it.
            } else {
                start += chunk;
            }
        }
        if (chunk == 1)
            break;
    }
    return progress;
}

} // namespace

Scenario
shrinkScenario(const Scenario &failing, const std::string &invariant,
               const std::string &mutation, size_t max_runs,
               ShrinkStats *stats)
{
    Shrinker sh{failing, invariant, mutation, max_runs, {}};
    // Greedy fixpoint: every pass order-dependently simplifies; repeat
    // until a full sweep makes no progress or the budget is spent.
    bool progress = true;
    while (progress && sh.budgetLeft()) {
        progress = false;
        progress |= shrinkFaults(sh);
        progress |= shrinkSizes(sh);
        progress |= shrinkConfig(sh);
        progress |= shrinkTraces(sh);
    }
    if (stats)
        *stats = sh.stats;
    return sh.current;
}

} // namespace sleuth::campaign
