#pragma once

/**
 * @file
 * The seeded chaos-campaign engine. A campaign draws N randomized
 * scenarios from one master seed, materializes each into an end-to-end
 * incident (application → chaos plan → storm → fitted pipeline), and
 * checks every registered metamorphic invariant. Failing scenarios are
 * shrunk to minimal repro cases. Identical (seed, scenarios) inputs
 * replay identical campaigns on every platform the simulator is
 * deterministic on.
 */

#include <map>
#include <string>
#include <vector>

#include "campaign/shrink.h"

namespace sleuth::campaign {

/** Campaign knobs. */
struct CampaignParams
{
    /** Master seed; scenario s derives from fork(s). */
    uint64_t seed = 1;
    /** Scenarios to draw and check. */
    size_t scenarios = 20;
    /**
     * Test-only mutation injected into every invariant check (see
     * CheckContext); empty in production campaigns.
     */
    std::string mutation;
    /** Shrink failing scenarios to minimal repros. */
    bool shrink = true;
    /** Per-failure shrink budget (scenario re-executions). */
    size_t maxShrinkRuns = 140;
};

/** One invariant's outcome on one scenario. */
struct InvariantOutcome
{
    std::string invariant;
    bool pass = true;
    std::string detail;
};

/** One scenario's outcomes. */
struct ScenarioOutcome
{
    Scenario scenario;
    /** True when the scenario produced no storm (checks skipped). */
    bool degenerate = false;
    std::string degenerateReason;
    std::vector<InvariantOutcome> checks;

    /** True when every executed check passed. */
    bool allPassed() const;
};

/** Aggregated campaign result. */
struct CampaignReport
{
    CampaignParams params;
    std::vector<ScenarioOutcome> outcomes;
    /** Shrunk repros, one per failing (scenario, invariant) pair. */
    std::vector<ReproCase> repros;

    /** True when every scenario passed every invariant. */
    bool allPassed() const;
    /** Total invariant checks executed. */
    size_t checksRun() const;
    /** Total failing checks. */
    size_t failures() const;
    /** Scenarios skipped as degenerate. */
    size_t degenerateScenarios() const;
    /** invariant name -> (pass count, fail count). */
    std::map<std::string, std::pair<size_t, size_t>>
    perInvariant() const;

    /**
     * BENCH-format rows ({"metric", "value", "unit"}) summarizing the
     * campaign, matching the perf-suite emission convention.
     *
     * @param elapsed_seconds wall-clock time measured by the caller
     */
    util::Json benchJson(double elapsed_seconds) const;
};

/** Run a campaign. */
CampaignReport runCampaign(const CampaignParams &params);

/**
 * Re-execute a repro case: build its scenario and check its invariant
 * under its mutation. Returns the invariant's result (the caller
 * compares against the case's `expect`).
 */
InvariantResult replayCase(const ReproCase &c);

} // namespace sleuth::campaign
