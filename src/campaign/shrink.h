#pragma once

/**
 * @file
 * Failing-scenario minimization. When an invariant fails, the shrinker
 * greedily simplifies the scenario — dropping planned faults, shrinking
 * the application, bisecting pipeline-config fields toward defaults,
 * and delta-debugging the harvested-trace mask — re-checking the
 * invariant after every candidate edit and keeping edits that still
 * fail. The result is a minimal ReproCase: a self-contained JSON file
 * the campaign_replay target re-executes bit-for-bit.
 */

#include <string>

#include "campaign/invariants.h"
#include "campaign/scenario.h"

namespace sleuth::campaign {

/** A serialized failing (or curated passing) campaign case. */
struct ReproCase
{
    /** Repro file format version. */
    int version = 1;
    /** Name of the invariant this case exercises. */
    std::string invariant;
    /** Test-only mutation active when the case was captured. */
    std::string mutation;
    /** Expected replay outcome: "fail" for repros, "pass" for corpus. */
    std::string expect = "fail";
    /** The (usually shrunk) scenario. */
    Scenario scenario;
    /** Human-readable context (the failure detail at capture time). */
    std::string note;
};

/** Serialize a repro case. */
util::Json toJson(const ReproCase &c);

/** Deserialize a repro case; fatal() on malformed input. */
ReproCase reproFromJson(const util::Json &doc);

/**
 * Build the scenario and check one invariant. Degenerate scenarios
 * (no anomalous traces) vacuously pass — the shrinker can therefore
 * never minimize into an empty incident.
 */
InvariantResult runInvariantOnScenario(const Scenario &s,
                                       const std::string &invariant,
                                       const std::string &mutation);

/** Shrink accounting. */
struct ShrinkStats
{
    /** Scenario builds + invariant checks executed. */
    size_t runs = 0;
    /** Candidate edits that kept the failure and were accepted. */
    size_t accepted = 0;
};

/**
 * Greedy fixpoint minimization of a failing scenario. The returned
 * scenario still fails `invariant` (under `mutation`), is no larger
 * than the input, and is typically much smaller. `max_runs` bounds the
 * number of scenario re-executions.
 */
Scenario shrinkScenario(const Scenario &failing,
                        const std::string &invariant,
                        const std::string &mutation,
                        size_t max_runs = 140,
                        ShrinkStats *stats = nullptr);

} // namespace sleuth::campaign
