#pragma once

/**
 * @file
 * Semantic text embeddings for service and operation names.
 *
 * The paper uses a pre-trained sentence-BERT model to produce 768-d
 * embeddings whose distances reflect semantic similarity (§3.2.2). This
 * module substitutes a deterministic token-hash embedder: names are
 * pre-processed the same way the paper describes (special characters
 * removed, camel-case words separated, long hex digits replaced with a
 * placeholder), each token is hashed to a stable pseudo-random unit
 * vector, and the token vectors are averaged and re-normalized. Names
 * sharing tokens ("redis-get" vs "redis-set") land near each other,
 * names with disjoint vocabularies land far apart — the two properties
 * the Sleuth model and the Fig. 8 semantic-sensitivity experiment rely
 * on. Embeddings are cached per distinct string, mirroring the paper's
 * pointer-based storage optimization.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace sleuth::embed {

/**
 * Pre-process raw span text (paper §3.2.2): strip special characters,
 * split camel case, lower-case, and replace hex-digit IDs with "<id>".
 */
std::vector<std::string> preprocess(const std::string &text);

/**
 * An embedding quantized to int8 fixed point: q[i] = round(x[i]*127),
 * valid for L2-normalized inputs (|x[i]| <= 1). The quantized cosine
 * runs in integer arithmetic (exact under any SIMD dispatch) and
 * tracks the float cosine within the declared tolerance of ~0.02 for
 * 32-d unit vectors.
 */
struct QuantizedEmbedding
{
    std::vector<int8_t> q;

    /** True for the all-zero embedding (no tokens). */
    bool zero() const;
};

/** Deterministic token-hash sentence embedder with a per-string cache. */
class TextEmbedder
{
  public:
    /** Construct with the embedding dimensionality. */
    explicit TextEmbedder(size_t dim = 32);

    /** Embedding dimensionality. */
    size_t dim() const { return dim_; }

    /**
     * Embed a text; the result is an L2-normalized dim()-vector, the
     * zero vector for texts with no tokens. Results are cached per
     * distinct input string.
     */
    const std::vector<double> &embed(const std::string &text);

    /** Cosine similarity of two embeddings (0 when either is zero). */
    static double cosine(const std::vector<double> &a,
                         const std::vector<double> &b);

    /**
     * Int8 fixed-point embedding of a text (cached per distinct
     * string); quantized from the float embedding.
     */
    const QuantizedEmbedding &embedQuantized(const std::string &text);

    /** Quantize an L2-normalized embedding to int8 fixed point. */
    static QuantizedEmbedding quantize(const std::vector<double> &v);

    /**
     * Cosine similarity in int8 fixed point (0 when either is zero).
     * Integer dot products: bitwise-identical for scalar and SIMD.
     */
    static double cosineQuantized(const QuantizedEmbedding &a,
                                  const QuantizedEmbedding &b);

    /** Number of distinct strings cached so far. */
    size_t cacheSize() const { return cache_.size(); }

  private:
    std::vector<double> computeEmbedding(const std::string &text) const;
    std::vector<double> tokenVector(const std::string &token) const;

    size_t dim_;
    std::unordered_map<std::string, std::vector<double>> cache_;
    std::unordered_map<std::string, QuantizedEmbedding> qcache_;
};

} // namespace sleuth::embed
