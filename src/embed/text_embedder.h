#pragma once

/**
 * @file
 * Semantic text embeddings for service and operation names.
 *
 * The paper uses a pre-trained sentence-BERT model to produce 768-d
 * embeddings whose distances reflect semantic similarity (§3.2.2). This
 * module substitutes a deterministic token-hash embedder: names are
 * pre-processed the same way the paper describes (special characters
 * removed, camel-case words separated, long hex digits replaced with a
 * placeholder), each token is hashed to a stable pseudo-random unit
 * vector, and the token vectors are averaged and re-normalized. Names
 * sharing tokens ("redis-get" vs "redis-set") land near each other,
 * names with disjoint vocabularies land far apart — the two properties
 * the Sleuth model and the Fig. 8 semantic-sensitivity experiment rely
 * on. Embeddings are cached per distinct string, mirroring the paper's
 * pointer-based storage optimization.
 */

#include <string>
#include <unordered_map>
#include <vector>

namespace sleuth::embed {

/**
 * Pre-process raw span text (paper §3.2.2): strip special characters,
 * split camel case, lower-case, and replace hex-digit IDs with "<id>".
 */
std::vector<std::string> preprocess(const std::string &text);

/** Deterministic token-hash sentence embedder with a per-string cache. */
class TextEmbedder
{
  public:
    /** Construct with the embedding dimensionality. */
    explicit TextEmbedder(size_t dim = 32);

    /** Embedding dimensionality. */
    size_t dim() const { return dim_; }

    /**
     * Embed a text; the result is an L2-normalized dim()-vector, the
     * zero vector for texts with no tokens. Results are cached per
     * distinct input string.
     */
    const std::vector<double> &embed(const std::string &text);

    /** Cosine similarity of two embeddings (0 when either is zero). */
    static double cosine(const std::vector<double> &a,
                         const std::vector<double> &b);

    /** Number of distinct strings cached so far. */
    size_t cacheSize() const { return cache_.size(); }

  private:
    std::vector<double> computeEmbedding(const std::string &text) const;
    std::vector<double> tokenVector(const std::string &token) const;

    size_t dim_;
    std::unordered_map<std::string, std::vector<double>> cache_;
};

} // namespace sleuth::embed
