#include "text_embedder.h"

#include <cmath>

#include <cctype>

#include "util/simd.h"
#include "util/strings.h"

namespace sleuth::embed {

std::vector<std::string>
preprocess(const std::string &text)
{
    // Hex-ID replacement must see whole separator-delimited tokens, so
    // split on non-alphanumerics first and camel-split afterwards.
    std::vector<std::string> tokens;
    std::string raw;
    auto flush = [&]() {
        if (raw.empty())
            return;
        if (util::looksLikeHexId(raw)) {
            tokens.push_back("<id>");
        } else {
            for (std::string &w : util::splitIdentifier(raw))
                tokens.push_back(std::move(w));
        }
        raw.clear();
    };
    for (char c : text) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            raw.push_back(c);
        else
            flush();
    }
    flush();
    return tokens;
}

TextEmbedder::TextEmbedder(size_t dim) : dim_(dim) {}

namespace {

/** FNV-1a 64-bit hash. */
uint64_t
fnv1a(const std::string &s, uint64_t seed)
{
    uint64_t h = 1469598103934665603ull ^ seed;
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** SplitMix64 step for stream expansion from one hash. */
uint64_t
splitmix(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

std::vector<double>
TextEmbedder::tokenVector(const std::string &token) const
{
    // Each token deterministically expands to a pseudo-random Gaussian
    // direction; identical tokens always produce identical directions.
    std::vector<double> v(dim_);
    uint64_t state = fnv1a(token, 0x5145u);
    for (size_t i = 0; i < dim_; i += 2) {
        // Box-Muller from two uniform draws.
        double u1 = (static_cast<double>(splitmix(state) >> 11) + 1.0) /
                    9007199254740994.0;
        double u2 = (static_cast<double>(splitmix(state) >> 11) + 1.0) /
                    9007199254740994.0;
        double r = std::sqrt(-2.0 * std::log(u1));
        v[i] = r * std::cos(2.0 * M_PI * u2);
        if (i + 1 < dim_)
            v[i + 1] = r * std::sin(2.0 * M_PI * u2);
    }
    double norm = 0.0;
    for (double x : v)
        norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0.0)
        for (double &x : v)
            x /= norm;
    return v;
}

std::vector<double>
TextEmbedder::computeEmbedding(const std::string &text) const
{
    std::vector<double> acc(dim_, 0.0);
    std::vector<std::string> tokens = preprocess(text);
    if (tokens.empty())
        return acc;
    for (const std::string &t : tokens) {
        std::vector<double> tv = tokenVector(t);
        simd::add(acc.data(), tv.data(), dim_);
    }
    // The norm reduction stays strictly sequential so cached embedding
    // values are independent of SIMD dispatch; the elementwise divide
    // vectorizes exactly.
    double norm = 0.0;
    for (double x : acc)
        norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0.0)
        simd::div(acc.data(), norm, dim_);
    return acc;
}

const std::vector<double> &
TextEmbedder::embed(const std::string &text)
{
    auto it = cache_.find(text);
    if (it != cache_.end())
        return it->second;
    return cache_.emplace(text, computeEmbedding(text)).first->second;
}

double
TextEmbedder::cosine(const std::vector<double> &a,
                     const std::vector<double> &b)
{
    // 4-lane blocked reductions (simd::dotBlocked): no legacy
    // accumulation order is pinned here, callers only compare
    // similarities within float tolerance.
    size_t n = std::min(a.size(), b.size());
    double dot = simd::dotBlocked(a.data(), b.data(), n);
    double na = simd::dotBlocked(a.data(), a.data(), n);
    double nb = simd::dotBlocked(b.data(), b.data(), n);
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return dot / std::sqrt(na * nb);
}

bool
QuantizedEmbedding::zero() const
{
    for (int8_t x : q)
        if (x != 0)
            return false;
    return true;
}

QuantizedEmbedding
TextEmbedder::quantize(const std::vector<double> &v)
{
    QuantizedEmbedding out;
    out.q.resize(v.size());
    for (size_t i = 0; i < v.size(); ++i) {
        double scaled = std::nearbyint(v[i] * 127.0);
        if (scaled > 127.0)
            scaled = 127.0;
        if (scaled < -127.0)
            scaled = -127.0;
        out.q[i] = static_cast<int8_t>(scaled);
    }
    return out;
}

const QuantizedEmbedding &
TextEmbedder::embedQuantized(const std::string &text)
{
    auto it = qcache_.find(text);
    if (it != qcache_.end())
        return it->second;
    return qcache_.emplace(text, quantize(embed(text))).first->second;
}

double
TextEmbedder::cosineQuantized(const QuantizedEmbedding &a,
                              const QuantizedEmbedding &b)
{
    size_t n = std::min(a.q.size(), b.q.size());
    int64_t dot = simd::dotI8(a.q.data(), b.q.data(), n);
    int64_t na = simd::dotI8(a.q.data(), a.q.data(), n);
    int64_t nb = simd::dotI8(b.q.data(), b.q.data(), n);
    if (na == 0 || nb == 0)
        return 0.0;
    return static_cast<double>(dot) /
           std::sqrt(static_cast<double>(na) *
                     static_cast<double>(nb));
}

} // namespace sleuth::embed
