#pragma once

/**
 * @file
 * A dense row-major matrix of doubles — the value type of the autograd
 * engine. Vectors are represented as n x 1 or 1 x n matrices.
 */

#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace sleuth::nn {

/** Dense 2-D tensor (row-major, double precision). */
class Tensor
{
  public:
    /** Empty 0x0 tensor. */
    Tensor() = default;

    /** Zero-filled tensor of the given shape. */
    Tensor(size_t rows, size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

    /** Tensor with explicit contents (row-major). */
    Tensor(size_t rows, size_t cols, std::vector<double> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        SLEUTH_ASSERT(data_.size() == rows_ * cols_, "tensor shape/data");
    }

    /** 1x1 tensor holding a scalar. */
    static Tensor scalar(double v) { return Tensor(1, 1, {v}); }

    /** Column vector from values. */
    static Tensor column(std::vector<double> values);

    /** Tensor of the given shape filled with a constant. */
    static Tensor full(size_t rows, size_t cols, double v);

    /** Gaussian-initialized tensor (mean 0, given stddev). */
    static Tensor randn(size_t rows, size_t cols, double stddev,
                        util::Rng &rng);

    /** Number of rows. */
    size_t rows() const { return rows_; }
    /** Number of columns. */
    size_t cols() const { return cols_; }
    /** Total element count. */
    size_t size() const { return data_.size(); }
    /** True when the shapes are identical. */
    bool sameShape(const Tensor &o) const
    {
        return rows_ == o.rows_ && cols_ == o.cols_;
    }

    /** Element access. */
    double &
    at(size_t r, size_t c)
    {
        SLEUTH_ASSERT(r < rows_ && c < cols_, "tensor index");
        return data_[r * cols_ + c];
    }
    /** Element access (const). */
    double
    at(size_t r, size_t c) const
    {
        SLEUTH_ASSERT(r < rows_ && c < cols_, "tensor index");
        return data_[r * cols_ + c];
    }
    /** Raw storage (row-major). */
    std::vector<double> &data() { return data_; }
    /** Raw storage (const). */
    const std::vector<double> &data() const { return data_; }

    /** The single element of a 1x1 tensor. */
    double item() const;

    /** Fill every element with a constant. */
    void fill(double v);

    /** this += other (same shape). */
    void addInPlace(const Tensor &other);

    /** this *= scalar. */
    void scaleInPlace(double s);

    /** Matrix product this x other. */
    Tensor matmul(const Tensor &other) const;

    /**
     * Matrix product thisᵀ x other without materializing the
     * transpose (rank-1 row accumulation; both operands are walked
     * row-contiguously). this is k x m, other k x n, result m x n.
     */
    Tensor matmulTransposedA(const Tensor &other) const;

    /**
     * Matrix product this x otherᵀ without materializing the
     * transpose (each output element is a dot product of two
     * contiguous rows). this is m x n, other p x n, result m x p.
     */
    Tensor matmulTransposedB(const Tensor &other) const;

    /** Transpose. */
    Tensor transposed() const;

    /** Sum of all elements. */
    double sum() const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace sleuth::nn
