#pragma once

/**
 * @file
 * Neural-network building blocks on top of the autograd engine: linear
 * layers and multi-layer perceptrons with Xavier initialization.
 */

#include <string>
#include <vector>

#include "nn/autograd.h"
#include "util/json.h"
#include "util/rng.h"

namespace sleuth::nn {

/** Supported hidden activations. */
enum class Activation { None, Relu, Sigmoid, Tanh };

/** Fully connected layer: y = x W + b. */
class Linear
{
  public:
    /** Xavier-initialized layer of the given shape. */
    Linear(size_t in, size_t out, util::Rng &rng);

    /** Forward pass: x is Nxin, the result is Nxout. */
    Var forward(const Var &x) const;

    /** Trainable parameters (weight then bias). */
    std::vector<Var> parameters() const { return {weight_, bias_}; }

    /** Input width. */
    size_t inFeatures() const { return weight_->value().rows(); }
    /** Output width. */
    size_t outFeatures() const { return weight_->value().cols(); }

  private:
    Var weight_;  ///< in x out
    Var bias_;    ///< 1 x out
};

/** A multi-layer perceptron with a fixed hidden activation. */
class Mlp
{
  public:
    /**
     * Build an MLP from layer widths.
     *
     * @param widths at least {in, out}; intermediate entries are hidden
     * @param hidden activation between layers (not applied after last)
     * @param rng initialization randomness
     */
    Mlp(const std::vector<size_t> &widths, Activation hidden,
        util::Rng &rng);

    /** Forward pass over a batch of rows. */
    Var forward(Var x) const;

    /** All trainable parameters, in layer order. */
    std::vector<Var> parameters() const;

    /** Total scalar parameter count. */
    size_t parameterCount() const;

    /** Input width. */
    size_t inFeatures() const { return layers_.front().inFeatures(); }
    /** Output width. */
    size_t outFeatures() const { return layers_.back().outFeatures(); }

  private:
    std::vector<Linear> layers_;
    Activation hidden_;
};

/** Apply an activation to a Var. */
Var activate(const Var &x, Activation act);

/** Serialize a parameter list to a JSON array of {rows, cols, data}. */
util::Json parametersToJson(const std::vector<Var> &params);

/**
 * Load parameter values in place from JSON produced by
 * parametersToJson(); shapes must match exactly (fatal otherwise).
 */
void parametersFromJson(const util::Json &doc,
                        const std::vector<Var> &params);

} // namespace sleuth::nn
