#include "autograd.h"

#include <cmath>
#include <unordered_set>

namespace sleuth::nn {

namespace {

constexpr double kLn10 = 2.302585092994046;

bool
anyRequiresGrad(const std::vector<Var> &parents)
{
    for (const Var &p : parents)
        if (p && p->requiresGrad())
            return true;
    return false;
}

} // namespace

Var
makeNode(Tensor value, bool requires_grad, std::vector<Var> parents,
         std::function<void(Node &)> backward)
{
    auto n = std::make_shared<Node>();
    n->value_ = std::move(value);
    n->requires_grad_ = requires_grad;
    n->parents_ = std::move(parents);
    n->backward_ = std::move(backward);
    return n;
}

Var
constant(Tensor value)
{
    return makeNode(std::move(value), false, {}, nullptr);
}

Var
param(Tensor value)
{
    return makeNode(std::move(value), true, {}, nullptr);
}

void
backward(const Var &root)
{
    SLEUTH_ASSERT(root, "backward on null var");
    SLEUTH_ASSERT(root->value().size() == 1, "backward needs a scalar root");

    // Iterative DFS to produce a topological order (children after all
    // the nodes that depend on them when the order is reversed).
    std::vector<Node *> topo;
    std::vector<std::pair<Node *, size_t>> stack;
    std::unordered_set<Node *> visited, done;
    stack.emplace_back(root.get(), 0);
    visited.insert(root.get());
    while (!stack.empty()) {
        auto &[node, next_child] = stack.back();
        if (next_child < node->parents_.size()) {
            Node *p = node->parents_[next_child++].get();
            if (p && !visited.count(p)) {
                visited.insert(p);
                stack.emplace_back(p, 0);
            }
        } else {
            topo.push_back(node);
            stack.pop_back();
        }
    }

    for (Node *n : topo)
        GradAccess::grad(*n).fill(0.0);
    GradAccess::grad(*root).fill(1.0);

    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        Node *n = *it;
        if (n->backward_ && n->requires_grad_)
            n->backward_(*n);
    }
    (void)done;
}

Var
add(const Var &a, const Var &b)
{
    SLEUTH_ASSERT(a->value().sameShape(b->value()), "add shape mismatch");
    Tensor out = a->value();
    out.addInPlace(b->value());
    return makeNode(std::move(out), anyRequiresGrad({a, b}), {a, b},
                    [a, b](Node &self) {
        const Tensor &g = self.grad();
        if (a->requiresGrad())
            GradAccess::grad(*a).addInPlace(g);
        if (b->requiresGrad())
            GradAccess::grad(*b).addInPlace(g);
    });
}

Var
sub(const Var &a, const Var &b)
{
    SLEUTH_ASSERT(a->value().sameShape(b->value()), "sub shape mismatch");
    Tensor out = a->value();
    for (size_t i = 0; i < out.size(); ++i)
        out.data()[i] -= b->value().data()[i];
    return makeNode(std::move(out), anyRequiresGrad({a, b}), {a, b},
                    [a, b](Node &self) {
        const Tensor &g = self.grad();
        if (a->requiresGrad())
            GradAccess::grad(*a).addInPlace(g);
        if (b->requiresGrad()) {
            Tensor &gb = GradAccess::grad(*b);
            for (size_t i = 0; i < gb.size(); ++i)
                gb.data()[i] -= g.data()[i];
        }
    });
}

Var
mul(const Var &a, const Var &b)
{
    SLEUTH_ASSERT(a->value().sameShape(b->value()), "mul shape mismatch");
    Tensor out = a->value();
    for (size_t i = 0; i < out.size(); ++i)
        out.data()[i] *= b->value().data()[i];
    return makeNode(std::move(out), anyRequiresGrad({a, b}), {a, b},
                    [a, b](Node &self) {
        const Tensor &g = self.grad();
        if (a->requiresGrad()) {
            Tensor &ga = GradAccess::grad(*a);
            for (size_t i = 0; i < ga.size(); ++i)
                ga.data()[i] += g.data()[i] * b->value().data()[i];
        }
        if (b->requiresGrad()) {
            Tensor &gb = GradAccess::grad(*b);
            for (size_t i = 0; i < gb.size(); ++i)
                gb.data()[i] += g.data()[i] * a->value().data()[i];
        }
    });
}

Var
addRow(const Var &a, const Var &row)
{
    const Tensor &av = a->value();
    const Tensor &rv = row->value();
    SLEUTH_ASSERT(rv.rows() == 1 && rv.cols() == av.cols(),
                  "addRow expects a 1xC row vector");
    Tensor out = av;
    for (size_t i = 0; i < av.rows(); ++i)
        for (size_t j = 0; j < av.cols(); ++j)
            out.at(i, j) += rv.at(0, j);
    return makeNode(std::move(out), anyRequiresGrad({a, row}), {a, row},
                    [a, row](Node &self) {
        const Tensor &g = self.grad();
        if (a->requiresGrad())
            GradAccess::grad(*a).addInPlace(g);
        if (row->requiresGrad()) {
            Tensor &gr = GradAccess::grad(*row);
            for (size_t i = 0; i < g.rows(); ++i)
                for (size_t j = 0; j < g.cols(); ++j)
                    gr.at(0, j) += g.at(i, j);
        }
    });
}

Var
scale(const Var &a, double s)
{
    Tensor out = a->value();
    out.scaleInPlace(s);
    return makeNode(std::move(out), a->requiresGrad(), {a},
                    [a, s](Node &self) {
        if (!a->requiresGrad())
            return;
        Tensor &ga = GradAccess::grad(*a);
        const Tensor &g = self.grad();
        for (size_t i = 0; i < ga.size(); ++i)
            ga.data()[i] += g.data()[i] * s;
    });
}

Var
addScalar(const Var &a, double s)
{
    Tensor out = a->value();
    for (double &x : out.data())
        x += s;
    return makeNode(std::move(out), a->requiresGrad(), {a},
                    [a](Node &self) {
        if (a->requiresGrad())
            GradAccess::grad(*a).addInPlace(self.grad());
    });
}

Var
matmul(const Var &a, const Var &b)
{
    Tensor out = a->value().matmul(b->value());
    return makeNode(std::move(out), anyRequiresGrad({a, b}), {a, b},
                    [a, b](Node &self) {
        const Tensor &g = self.grad();
        // Transpose-free kernels: gA = g·Bᵀ and gB = Aᵀ·g without
        // materializing either transposed operand.
        if (a->requiresGrad())
            GradAccess::grad(*a).addInPlace(
                g.matmulTransposedB(b->value()));
        if (b->requiresGrad())
            GradAccess::grad(*b).addInPlace(
                a->value().matmulTransposedA(g));
    });
}

Var
maxElem(const Var &a, const Var &b)
{
    SLEUTH_ASSERT(a->value().sameShape(b->value()), "maxElem shape");
    Tensor out = a->value();
    std::vector<char> a_wins(out.size());
    for (size_t i = 0; i < out.size(); ++i) {
        double bv = b->value().data()[i];
        if (out.data()[i] >= bv) {
            a_wins[i] = 1;
        } else {
            out.data()[i] = bv;
            a_wins[i] = 0;
        }
    }
    return makeNode(std::move(out), anyRequiresGrad({a, b}), {a, b},
                    [a, b, a_wins = std::move(a_wins)](Node &self) {
        const Tensor &g = self.grad();
        for (size_t i = 0; i < g.size(); ++i) {
            if (a_wins[i]) {
                if (a->requiresGrad())
                    GradAccess::grad(*a).data()[i] += g.data()[i];
            } else if (b->requiresGrad()) {
                GradAccess::grad(*b).data()[i] += g.data()[i];
            }
        }
    });
}

namespace {

/** Shared scaffolding for unary elementwise ops with dy/dx = f(x, y). */
template <typename Fwd, typename Bwd>
Var
unaryOp(const Var &a, Fwd fwd, Bwd dydx)
{
    Tensor out = a->value();
    for (double &x : out.data())
        x = fwd(x);
    Tensor saved = out;
    return makeNode(std::move(out), a->requiresGrad(), {a},
                    [a, saved = std::move(saved), dydx](Node &self) {
        if (!a->requiresGrad())
            return;
        Tensor &ga = GradAccess::grad(*a);
        const Tensor &g = self.grad();
        for (size_t i = 0; i < ga.size(); ++i)
            ga.data()[i] +=
                g.data()[i] * dydx(a->value().data()[i], saved.data()[i]);
    });
}

} // namespace

Var
relu(const Var &a)
{
    return unaryOp(
        a, [](double x) { return x > 0.0 ? x : 0.0; },
        [](double x, double) { return x > 0.0 ? 1.0 : 0.0; });
}

Var
sigmoid(const Var &a)
{
    return unaryOp(
        a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
        [](double, double y) { return y * (1.0 - y); });
}

Var
tanhOp(const Var &a)
{
    return unaryOp(
        a, [](double x) { return std::tanh(x); },
        [](double, double y) { return 1.0 - y * y; });
}

Var
expOp(const Var &a)
{
    return unaryOp(
        a, [](double x) { return std::exp(x); },
        [](double, double y) { return y; });
}

Var
logOp(const Var &a, double eps)
{
    return unaryOp(
        a, [eps](double x) { return std::log(x > eps ? x : eps); },
        [eps](double x, double) { return x > eps ? 1.0 / x : 0.0; });
}

Var
pow10(const Var &a)
{
    return unaryOp(
        a, [](double x) { return std::pow(10.0, x); },
        [](double, double y) { return y * kLn10; });
}

Var
log10Op(const Var &a, double eps)
{
    return unaryOp(
        a, [eps](double x) { return std::log10(x > eps ? x : eps); },
        [eps](double x, double) {
            return x > eps ? 1.0 / (x * kLn10) : 0.0;
        });
}

Var
clamp(const Var &a, double lo, double hi)
{
    SLEUTH_ASSERT(lo <= hi, "clamp bounds");
    return unaryOp(
        a,
        [lo, hi](double x) { return x < lo ? lo : (x > hi ? hi : x); },
        [lo, hi](double x, double) {
            return (x >= lo && x <= hi) ? 1.0 : 0.0;
        });
}

Var
concatCols(const Var &a, const Var &b)
{
    const Tensor &av = a->value();
    const Tensor &bv = b->value();
    SLEUTH_ASSERT(av.rows() == bv.rows(), "concatCols row mismatch");
    Tensor out(av.rows(), av.cols() + bv.cols());
    for (size_t i = 0; i < av.rows(); ++i) {
        for (size_t j = 0; j < av.cols(); ++j)
            out.at(i, j) = av.at(i, j);
        for (size_t j = 0; j < bv.cols(); ++j)
            out.at(i, av.cols() + j) = bv.at(i, j);
    }
    size_t a_cols = av.cols();
    return makeNode(std::move(out), anyRequiresGrad({a, b}), {a, b},
                    [a, b, a_cols](Node &self) {
        const Tensor &g = self.grad();
        if (a->requiresGrad()) {
            Tensor &ga = GradAccess::grad(*a);
            for (size_t i = 0; i < ga.rows(); ++i)
                for (size_t j = 0; j < a_cols; ++j)
                    ga.at(i, j) += g.at(i, j);
        }
        if (b->requiresGrad()) {
            Tensor &gb = GradAccess::grad(*b);
            for (size_t i = 0; i < gb.rows(); ++i)
                for (size_t j = 0; j < gb.cols(); ++j)
                    gb.at(i, j) += g.at(i, a_cols + j);
        }
    });
}

Var
sliceCols(const Var &a, size_t from, size_t to)
{
    const Tensor &av = a->value();
    SLEUTH_ASSERT(from < to && to <= av.cols(), "sliceCols range");
    Tensor out(av.rows(), to - from);
    for (size_t i = 0; i < av.rows(); ++i)
        for (size_t j = from; j < to; ++j)
            out.at(i, j - from) = av.at(i, j);
    return makeNode(std::move(out), a->requiresGrad(), {a},
                    [a, from](Node &self) {
        if (!a->requiresGrad())
            return;
        Tensor &ga = GradAccess::grad(*a);
        const Tensor &g = self.grad();
        for (size_t i = 0; i < g.rows(); ++i)
            for (size_t j = 0; j < g.cols(); ++j)
                ga.at(i, from + j) += g.at(i, j);
    });
}

Var
gatherRows(const Var &a, const std::vector<size_t> &indices)
{
    const Tensor &av = a->value();
    Tensor out(indices.size(), av.cols());
    for (size_t i = 0; i < indices.size(); ++i) {
        SLEUTH_ASSERT(indices[i] < av.rows(), "gatherRows index");
        for (size_t j = 0; j < av.cols(); ++j)
            out.at(i, j) = av.at(indices[i], j);
    }
    return makeNode(std::move(out), a->requiresGrad(), {a},
                    [a, indices](Node &self) {
        if (!a->requiresGrad())
            return;
        Tensor &ga = GradAccess::grad(*a);
        const Tensor &g = self.grad();
        for (size_t i = 0; i < indices.size(); ++i)
            for (size_t j = 0; j < g.cols(); ++j)
                ga.at(indices[i], j) += g.at(i, j);
    });
}

Var
rowScale(const Var &a, const std::vector<double> &factors)
{
    const Tensor &av = a->value();
    SLEUTH_ASSERT(factors.size() == av.rows(), "rowScale factor count");
    Tensor out = av;
    for (size_t i = 0; i < av.rows(); ++i)
        for (size_t j = 0; j < av.cols(); ++j)
            out.at(i, j) *= factors[i];
    return makeNode(std::move(out), a->requiresGrad(), {a},
                    [a, factors](Node &self) {
        if (!a->requiresGrad())
            return;
        Tensor &ga = GradAccess::grad(*a);
        const Tensor &g = self.grad();
        for (size_t i = 0; i < g.rows(); ++i)
            for (size_t j = 0; j < g.cols(); ++j)
                ga.at(i, j) += g.at(i, j) * factors[i];
    });
}

Var
segmentSum(const Var &a, const std::vector<size_t> &seg, size_t n_segments)
{
    const Tensor &av = a->value();
    SLEUTH_ASSERT(seg.size() == av.rows(), "segmentSum segment count");
    Tensor out(n_segments, av.cols());
    for (size_t i = 0; i < seg.size(); ++i) {
        SLEUTH_ASSERT(seg[i] < n_segments, "segmentSum segment index");
        for (size_t j = 0; j < av.cols(); ++j)
            out.at(seg[i], j) += av.at(i, j);
    }
    return makeNode(std::move(out), a->requiresGrad(), {a},
                    [a, seg](Node &self) {
        if (!a->requiresGrad())
            return;
        Tensor &ga = GradAccess::grad(*a);
        const Tensor &g = self.grad();
        for (size_t i = 0; i < seg.size(); ++i)
            for (size_t j = 0; j < g.cols(); ++j)
                ga.at(i, j) += g.at(seg[i], j);
    });
}

Var
segmentMax(const Var &a, const std::vector<size_t> &seg, size_t n_segments,
           double empty_value)
{
    const Tensor &av = a->value();
    SLEUTH_ASSERT(seg.size() == av.rows(), "segmentMax segment count");
    Tensor out = Tensor::full(n_segments, av.cols(), empty_value);
    // argmax[s * cols + j] = input row winning segment s, column j.
    std::vector<ptrdiff_t> argmax(n_segments * av.cols(), -1);
    for (size_t i = 0; i < seg.size(); ++i) {
        SLEUTH_ASSERT(seg[i] < n_segments, "segmentMax segment index");
        for (size_t j = 0; j < av.cols(); ++j) {
            ptrdiff_t &win = argmax[seg[i] * av.cols() + j];
            if (win < 0 || av.at(i, j) > out.at(seg[i], j)) {
                out.at(seg[i], j) = av.at(i, j);
                win = static_cast<ptrdiff_t>(i);
            }
        }
    }
    size_t cols = av.cols();
    return makeNode(std::move(out), a->requiresGrad(), {a},
                    [a, argmax = std::move(argmax), cols](Node &self) {
        if (!a->requiresGrad())
            return;
        Tensor &ga = GradAccess::grad(*a);
        const Tensor &g = self.grad();
        for (size_t s = 0; s < g.rows(); ++s) {
            for (size_t j = 0; j < cols; ++j) {
                ptrdiff_t win = argmax[s * cols + j];
                if (win >= 0)
                    ga.at(static_cast<size_t>(win), j) += g.at(s, j);
            }
        }
    });
}

Var
sumAll(const Var &a)
{
    Tensor out = Tensor::scalar(a->value().sum());
    return makeNode(std::move(out), a->requiresGrad(), {a},
                    [a](Node &self) {
        if (!a->requiresGrad())
            return;
        Tensor &ga = GradAccess::grad(*a);
        double g = self.grad().item();
        for (double &x : ga.data())
            x += g;
    });
}

Var
meanAll(const Var &a)
{
    size_t n = a->value().size();
    SLEUTH_ASSERT(n > 0, "meanAll of empty tensor");
    return scale(sumAll(a), 1.0 / static_cast<double>(n));
}

} // namespace sleuth::nn
