#include "optim.h"

#include <cmath>

namespace sleuth::nn {

Sgd::Sgd(std::vector<Var> params, double lr)
    : params_(std::move(params)), lr_(lr)
{
}

void
Sgd::step()
{
    for (const Var &p : params_) {
        Tensor &value = p->mutableValue();
        const Tensor &g = p->grad();
        if (g.size() != value.size())
            continue;  // no backward pass touched this parameter yet
        for (size_t i = 0; i < value.size(); ++i)
            value.data()[i] -= lr_ * g.data()[i];
    }
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps)
{
    for (const Var &p : params_) {
        m_.emplace_back(p->value().rows(), p->value().cols());
        v_.emplace_back(p->value().rows(), p->value().cols());
    }
}

void
Adam::step()
{
    ++t_;
    double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    for (size_t k = 0; k < params_.size(); ++k) {
        Tensor &value = params_[k]->mutableValue();
        const Tensor &g = params_[k]->grad();
        if (g.size() != value.size())
            continue;
        for (size_t i = 0; i < value.size(); ++i) {
            double gi = g.data()[i];
            double &m = m_[k].data()[i];
            double &v = v_[k].data()[i];
            m = beta1_ * m + (1.0 - beta1_) * gi;
            v = beta2_ * v + (1.0 - beta2_) * gi * gi;
            double mh = m / bc1;
            double vh = v / bc2;
            value.data()[i] -= lr_ * mh / (std::sqrt(vh) + eps_);
        }
    }
}

double
clipGradNorm(const std::vector<Var> &params, double max_norm)
{
    SLEUTH_ASSERT(max_norm > 0.0);
    double sq = 0.0;
    for (const Var &p : params) {
        const Tensor &g = p->grad();
        for (double x : g.data())
            sq += x * x;
    }
    double norm = std::sqrt(sq);
    if (norm > max_norm) {
        double s = max_norm / norm;
        for (const Var &p : params) {
            if (p->grad().size() == 0)
                continue;
            GradAccess::grad(*p).scaleInPlace(s);
        }
    }
    return norm;
}

} // namespace sleuth::nn
