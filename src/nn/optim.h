#pragma once

/**
 * @file
 * First-order optimizers over autograd parameters.
 */

#include <vector>

#include "nn/autograd.h"

namespace sleuth::nn {

/** Interface of all optimizers. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /** Apply one update using the gradients currently in the params. */
    virtual void step() = 0;

    /** Parameters being optimized. */
    virtual const std::vector<Var> &parameters() const = 0;
};

/** Plain stochastic gradient descent. */
class Sgd : public Optimizer
{
  public:
    /** Optimize `params` with the given learning rate. */
    Sgd(std::vector<Var> params, double lr);

    void step() override;
    const std::vector<Var> &parameters() const override { return params_; }

  private:
    std::vector<Var> params_;
    double lr_;
};

/** Adam (Kingma & Ba) with bias correction. */
class Adam : public Optimizer
{
  public:
    /** Optimize `params`; defaults follow the standard recipe. */
    Adam(std::vector<Var> params, double lr = 1e-3, double beta1 = 0.9,
         double beta2 = 0.999, double eps = 1e-8);

    void step() override;
    const std::vector<Var> &parameters() const override { return params_; }

    /** Adjust the learning rate (used for fine-tuning schedules). */
    void setLearningRate(double lr) { lr_ = lr; }

  private:
    std::vector<Var> params_;
    std::vector<Tensor> m_, v_;
    double lr_, beta1_, beta2_, eps_;
    int64_t t_ = 0;
};

/**
 * Scale gradients in place so their global L2 norm is at most max_norm.
 *
 * @return the pre-clipping norm
 */
double clipGradNorm(const std::vector<Var> &params, double max_norm);

} // namespace sleuth::nn
