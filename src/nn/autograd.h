#pragma once

/**
 * @file
 * A small reverse-mode automatic-differentiation engine.
 *
 * Values are dense 2-D tensors; the operator set covers exactly what the
 * Sleuth GNN (paper Eqs. 2-5) and the baseline models need, including the
 * graph primitives gather / segment-sum / segment-max that implement
 * message passing over RPC dependency graphs of arbitrary topology.
 *
 * Usage: build an expression from Vars (leaves created with param() or
 * constant()), then call backward() on a scalar result; gradients
 * accumulate in each leaf's grad() tensor.
 */

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace sleuth::nn {

class Node;

/** Handle to a node of the autograd graph. */
using Var = std::shared_ptr<Node>;

/** One value in the autograd graph. */
class Node
{
  public:
    /** The forward value. */
    const Tensor &value() const { return value_; }
    /** Mutable forward value (optimizers update parameters in place). */
    Tensor &mutableValue() { return value_; }
    /** Accumulated gradient (valid after backward()). */
    const Tensor &grad() const { return grad_; }
    /** True when gradients flow through / into this node. */
    bool requiresGrad() const { return requires_grad_; }

  private:
    friend Var makeNode(Tensor value, bool requires_grad,
                        std::vector<Var> parents,
                        std::function<void(Node &)> backward);
    friend void backward(const Var &root);
    friend class GradAccess;

    Tensor value_;
    Tensor grad_;
    bool requires_grad_ = false;
    std::vector<Var> parents_;
    std::function<void(Node &)> backward_;
    int visit_mark_ = 0;
};

/** Internal helper granting ops access to node gradients. */
class GradAccess
{
  public:
    /** Gradient of a node, allocated on first use. */
    static Tensor &
    grad(Node &n)
    {
        if (n.grad_.size() != n.value_.size())
            n.grad_ = Tensor(n.value_.rows(), n.value_.cols());
        return n.grad_;
    }
    /** Forward value of a node. */
    static const Tensor &value(const Node &n) { return n.value_; }
};

/** Create a graph node (used by the op implementations). */
Var makeNode(Tensor value, bool requires_grad, std::vector<Var> parents,
             std::function<void(Node &)> backward);

/** A constant leaf: no gradient is tracked. */
Var constant(Tensor value);

/** A parameter leaf: gradients accumulate during backward(). */
Var param(Tensor value);

/**
 * Run reverse-mode differentiation from a scalar (1x1) root.
 *
 * Zeroes all gradients reachable from the root, seeds the root gradient
 * with 1, and propagates in reverse topological order.
 */
void backward(const Var &root);

/// @name Elementwise and matrix operators
/// @{

/** Elementwise sum of same-shape tensors. */
Var add(const Var &a, const Var &b);
/** Elementwise difference. */
Var sub(const Var &a, const Var &b);
/** Elementwise (Hadamard) product. */
Var mul(const Var &a, const Var &b);
/** Add a 1xC row vector to every row of an NxC tensor. */
Var addRow(const Var &a, const Var &row);
/** Multiply every element by a constant. */
Var scale(const Var &a, double s);
/** Add a constant to every element. */
Var addScalar(const Var &a, double s);
/** Matrix product. */
Var matmul(const Var &a, const Var &b);
/** Elementwise max of same-shape tensors (gradient to the winner). */
Var maxElem(const Var &a, const Var &b);
/** Rectified linear unit. */
Var relu(const Var &a);
/** Logistic sigmoid. */
Var sigmoid(const Var &a);
/** Hyperbolic tangent. */
Var tanhOp(const Var &a);
/** Elementwise natural exponential. */
Var expOp(const Var &a);
/** Elementwise natural log of max(x, eps). */
Var logOp(const Var &a, double eps = 1e-12);
/** Elementwise 10^x (the unscaling of paper Eq. 2). */
Var pow10(const Var &a);
/** Elementwise log10 of max(x, eps). */
Var log10Op(const Var &a, double eps = 1e-12);
/** Clamp into [lo, hi]; gradient passes only inside the range. */
Var clamp(const Var &a, double lo, double hi);

/// @}
/// @name Shape operators
/// @{

/** Concatenate two tensors with equal row counts along columns. */
Var concatCols(const Var &a, const Var &b);
/** Select the half-open column range [from, to). */
Var sliceCols(const Var &a, size_t from, size_t to);

/// @}
/// @name Graph (message-passing) operators
/// @{

/** Select rows by index (duplicates allowed). */
Var gatherRows(const Var &a, const std::vector<size_t> &indices);

/** Scale each row i by the constant factors[i] (e.g. 1/degree). */
Var rowScale(const Var &a, const std::vector<double> &factors);

/**
 * Sum rows into segments: out[seg[i]] += a[i].
 *
 * @param a NxC input, one row per edge/message
 * @param seg segment (destination row) per input row, < n_segments
 * @param n_segments number of output rows
 */
Var segmentSum(const Var &a, const std::vector<size_t> &seg,
               size_t n_segments);

/**
 * Max-reduce rows into segments; empty segments produce `empty_value`
 * and receive no gradient. Gradient routes to each column's argmax row.
 */
Var segmentMax(const Var &a, const std::vector<size_t> &seg,
               size_t n_segments, double empty_value = 0.0);

/// @}
/// @name Reductions
/// @{

/** Sum of all elements (1x1). */
Var sumAll(const Var &a);
/** Mean of all elements (1x1). */
Var meanAll(const Var &a);

/// @}

} // namespace sleuth::nn
