#include "tensor.h"

#include "util/simd.h"

namespace sleuth::nn {

Tensor
Tensor::column(std::vector<double> values)
{
    size_t n = values.size();
    return Tensor(n, 1, std::move(values));
}

Tensor
Tensor::full(size_t rows, size_t cols, double v)
{
    Tensor t(rows, cols);
    t.fill(v);
    return t;
}

Tensor
Tensor::randn(size_t rows, size_t cols, double stddev, util::Rng &rng)
{
    Tensor t(rows, cols);
    for (double &x : t.data_)
        x = rng.normal(0.0, stddev);
    return t;
}

double
Tensor::item() const
{
    SLEUTH_ASSERT(size() == 1, "item() on non-scalar tensor");
    return data_[0];
}

void
Tensor::fill(double v)
{
    for (double &x : data_)
        x = v;
}

void
Tensor::addInPlace(const Tensor &other)
{
    SLEUTH_ASSERT(sameShape(other), "addInPlace shape mismatch");
    simd::add(data_.data(), other.data_.data(), data_.size());
}

void
Tensor::scaleInPlace(double s)
{
    simd::scale(data_.data(), s, data_.size());
}

Tensor
Tensor::matmul(const Tensor &other) const
{
    SLEUTH_ASSERT(cols_ == other.rows_, "matmul shape mismatch: ",
                  rows_, "x", cols_, " * ", other.rows_, "x", other.cols_);
    Tensor out(rows_, other.cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            double a = data_[i * cols_ + k];
            if (a == 0.0)
                continue;
            const double *brow = &other.data_[k * other.cols_];
            double *orow = &out.data_[i * other.cols_];
            simd::axpy(orow, a, brow, other.cols_);
        }
    }
    return out;
}

Tensor
Tensor::matmulTransposedA(const Tensor &other) const
{
    SLEUTH_ASSERT(rows_ == other.rows_,
                  "matmulTransposedA shape mismatch: ", rows_, "x",
                  cols_, "ᵀ * ", other.rows_, "x", other.cols_);
    Tensor out(cols_, other.cols_);
    for (size_t k = 0; k < rows_; ++k) {
        const double *arow = &data_[k * cols_];
        const double *brow = &other.data_[k * other.cols_];
        for (size_t i = 0; i < cols_; ++i) {
            double a = arow[i];
            if (a == 0.0)
                continue;
            double *orow = &out.data_[i * other.cols_];
            simd::axpy(orow, a, brow, other.cols_);
        }
    }
    return out;
}

Tensor
Tensor::matmulTransposedB(const Tensor &other) const
{
    SLEUTH_ASSERT(cols_ == other.cols_,
                  "matmulTransposedB shape mismatch: ", rows_, "x",
                  cols_, " * ", other.rows_, "x", other.cols_, "ᵀ");
    Tensor out(rows_, other.rows_);
    // Each output is a strictly sequential dot over t, so results are
    // bitwise-identical to the naive loop: dotRows4 runs four
    // independent accumulator chains (one per output column) rather
    // than reassociating within a dot.
    for (size_t i = 0; i < rows_; ++i) {
        const double *arow = &data_[i * cols_];
        double *orow = &out.data_[i * other.rows_];
        size_t j = 0;
        for (; j + 4 <= other.rows_; j += 4) {
            simd::dotRows4(arow, &other.data_[j * other.cols_],
                           &other.data_[(j + 1) * other.cols_],
                           &other.data_[(j + 2) * other.cols_],
                           &other.data_[(j + 3) * other.cols_], cols_,
                           orow + j);
        }
        for (; j < other.rows_; ++j) {
            const double *brow = &other.data_[j * other.cols_];
            double dot = 0.0;
            for (size_t t = 0; t < cols_; ++t)
                dot += arow[t] * brow[t];
            orow[j] = dot;
        }
    }
    return out;
}

Tensor
Tensor::transposed() const
{
    Tensor out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i)
        for (size_t j = 0; j < cols_; ++j)
            out.data_[j * rows_ + i] = data_[i * cols_ + j];
    return out;
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (double x : data_)
        s += x;
    return s;
}

} // namespace sleuth::nn
