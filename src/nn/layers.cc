#include "layers.h"

#include <cmath>

namespace sleuth::nn {

Linear::Linear(size_t in, size_t out, util::Rng &rng)
{
    SLEUTH_ASSERT(in > 0 && out > 0, "linear layer shape");
    double stddev = std::sqrt(2.0 / static_cast<double>(in + out));
    weight_ = param(Tensor::randn(in, out, stddev, rng));
    bias_ = param(Tensor(1, out));
}

Var
Linear::forward(const Var &x) const
{
    return addRow(matmul(x, weight_), bias_);
}

Mlp::Mlp(const std::vector<size_t> &widths, Activation hidden,
         util::Rng &rng)
    : hidden_(hidden)
{
    SLEUTH_ASSERT(widths.size() >= 2, "mlp needs at least in/out widths");
    for (size_t i = 0; i + 1 < widths.size(); ++i)
        layers_.emplace_back(widths[i], widths[i + 1], rng);
}

Var
Mlp::forward(Var x) const
{
    for (size_t i = 0; i < layers_.size(); ++i) {
        x = layers_[i].forward(x);
        if (i + 1 < layers_.size())
            x = activate(x, hidden_);
    }
    return x;
}

std::vector<Var>
Mlp::parameters() const
{
    std::vector<Var> out;
    for (const Linear &l : layers_)
        for (const Var &p : l.parameters())
            out.push_back(p);
    return out;
}

size_t
Mlp::parameterCount() const
{
    size_t n = 0;
    for (const Var &p : parameters())
        n += p->value().size();
    return n;
}

Var
activate(const Var &x, Activation act)
{
    switch (act) {
      case Activation::None: return x;
      case Activation::Relu: return relu(x);
      case Activation::Sigmoid: return sigmoid(x);
      case Activation::Tanh: return tanhOp(x);
    }
    util::panic("invalid activation");
}

util::Json
parametersToJson(const std::vector<Var> &params)
{
    util::Json arr = util::Json::array();
    for (const Var &p : params) {
        util::Json entry = util::Json::object();
        entry.set("rows", p->value().rows());
        entry.set("cols", p->value().cols());
        util::Json data = util::Json::array();
        for (double v : p->value().data())
            data.push(v);
        entry.set("data", std::move(data));
        arr.push(std::move(entry));
    }
    return arr;
}

void
parametersFromJson(const util::Json &doc, const std::vector<Var> &params)
{
    const auto &arr = doc.asArray();
    if (arr.size() != params.size())
        util::fatal("model load: expected ", params.size(),
                    " parameter tensors, found ", arr.size());
    for (size_t i = 0; i < params.size(); ++i) {
        const util::Json &entry = arr[i];
        size_t rows = static_cast<size_t>(entry.at("rows").asInt());
        size_t cols = static_cast<size_t>(entry.at("cols").asInt());
        Tensor &value = params[i]->mutableValue();
        if (rows != value.rows() || cols != value.cols())
            util::fatal("model load: parameter ", i, " shape mismatch");
        const auto &data = entry.at("data").asArray();
        if (data.size() != value.size())
            util::fatal("model load: parameter ", i, " size mismatch");
        for (size_t k = 0; k < data.size(); ++k)
            value.data()[k] = data[k].asNumber();
    }
}

} // namespace sleuth::nn
