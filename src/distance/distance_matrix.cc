#include "distance_matrix.h"

namespace sleuth::distance {

namespace {

/** Weighted-Jaccard row i of the packed matrix (pairs (i, j<i)). */
void
jaccardRow(const std::vector<WeightedSpanSet> &sets, size_t i,
           std::vector<double> &d)
{
    double *row = d.data() + i * (i - 1) / 2;
    for (size_t j = 0; j < i; ++j)
        row[j] = jaccardDistance(sets[i], sets[j]);
}

} // namespace

DistanceMatrix
DistanceMatrix::compute(size_t n,
                        const std::function<double(size_t, size_t)> &dist)
{
    DistanceMatrix m(n);
    for (size_t i = 1; i < n; ++i)
        for (size_t j = 0; j < i; ++j)
            m.d_[i * (i - 1) / 2 + j] = dist(i, j);
    return m;
}

DistanceMatrix
DistanceMatrix::fromSpanSets(const std::vector<WeightedSpanSet> &sets,
                             util::ThreadPool *pool)
{
    const size_t n = sets.size();
    DistanceMatrix m(n);
    if (n < 2)
        return m;
    if (!pool || pool->size() == 1) {
        for (size_t i = 1; i < n; ++i)
            jaccardRow(sets, i, m.d_);
        return m;
    }
    // Row i costs i merge passes, so contiguous row chunks would load
    // the last worker quadratically. Pair cheap and expensive rows
    // (k <-> n-1-k) so every contiguous index chunk carries ~equal
    // work; each row writes a disjoint packed slice, so the matrix is
    // identical for any thread count.
    pool->parallelFor(n - 1, [&](size_t idx, size_t) {
        size_t i = (idx % 2 == 0) ? 1 + idx / 2 : n - 1 - idx / 2;
        jaccardRow(sets, i, m.d_);
    });
    return m;
}

} // namespace sleuth::distance
