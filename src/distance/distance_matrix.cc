#include "distance_matrix.h"

namespace sleuth::distance {

DistanceMatrix
DistanceMatrix::compute(size_t n,
                        const std::function<double(size_t, size_t)> &dist)
{
    DistanceMatrix m(n);
    for (size_t i = 1; i < n; ++i)
        for (size_t j = 0; j < i; ++j)
            m.d_[i * (i - 1) / 2 + j] = dist(i, j);
    return m;
}

DistanceMatrix
DistanceMatrix::fromSpanSets(const std::vector<WeightedSpanSet> &sets)
{
    const size_t n = sets.size();
    DistanceMatrix m(n);
    for (size_t i = 1; i < n; ++i) {
        double *row = m.d_.data() + i * (i - 1) / 2;
        for (size_t j = 0; j < i; ++j)
            row[j] = jaccardDistance(sets[i], sets[j]);
    }
    return m;
}

} // namespace sleuth::distance
