#include "distance_matrix.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/simd.h"

namespace sleuth::distance {

namespace {

/**
 * Structure-of-arrays view of a batch of span sets: all keys and
 * weights concatenated contiguously with per-set offsets, plus the
 * per-set total weight. With integer-valued weights (span durations —
 * the production encoding) every partial sum is exactly representable,
 * so |A ∪ B| = totalA + totalB − |A ∩ B| reproduces the legacy
 * interleaved merge bit for bit while the intersection runs through
 * the vectorized kernel. Fractional weights (only seen from the
 * generic makeSpanSet API) fall back to the legacy per-pair merge.
 */
struct SpanSetIndex
{
    std::vector<uint64_t> keys;
    std::vector<double> weights;
    std::vector<size_t> offsets; // size n+1
    std::vector<double> totals;
    bool integral = true;
};

SpanSetIndex
buildIndex(const std::vector<WeightedSpanSet> &sets)
{
    SpanSetIndex ix;
    size_t total_entries = 0;
    for (const WeightedSpanSet &s : sets)
        total_entries += s.size();
    ix.keys.reserve(total_entries);
    ix.weights.reserve(total_entries);
    ix.offsets.reserve(sets.size() + 1);
    ix.offsets.push_back(0);
    ix.totals.reserve(sets.size());
    for (const WeightedSpanSet &s : sets) {
        double tot = 0.0;
        for (const auto &[k, w] : s) {
            ix.keys.push_back(k);
            ix.weights.push_back(w);
            if (!(std::floor(w) == w))
                ix.integral = false;
            tot += w;
        }
        // Exactness also needs every partial sum below 2^53; bound the
        // per-set total well inside that.
        if (!(std::abs(tot) < 9.0e15))
            ix.integral = false;
        ix.totals.push_back(tot);
        ix.offsets.push_back(ix.keys.size());
    }
    return ix;
}

/**
 * Key-set groups. Span-set keys hash only trace *structure* (service,
 * operation, kind, error flag, calling path), never durations, so in a
 * storm most traces share a handful of distinct key vectors (one per
 * flow × error pattern). Grouping sets by key vector lets us compute
 * each group pair's intersection *positions* once and reduce every
 * trace pair to a short branchless gather-min-sum over those
 * positions — instead of O(n²) two-pointer merges. Exactness makes
 * this safe: the grouped path only runs on integral-weight batches,
 * where every accumulation order yields the same bits.
 */
struct SetGroups
{
    bool usable = false;
    std::vector<uint32_t> group; // set -> group id
    std::vector<size_t> rep;     // group -> first set with that key vector
    // Flattened intersection offset pairs for group pair (hi, lo),
    // hi > lo, packed at pairOff[hi*(hi-1)/2 + lo]: ia indexes into
    // the hi-group set, ib into the lo-group set.
    std::vector<uint32_t> ia, ib;
    std::vector<size_t> pairOff; // size npairs + 1
};

SetGroups
buildGroups(const SpanSetIndex &ix)
{
    // Past this many distinct key vectors the precompute stops paying
    // for itself; fall back to per-pair merges.
    constexpr size_t kMaxGroups = 64;
    SetGroups g;
    const size_t n = ix.offsets.size() - 1;
    g.group.resize(n);
    std::unordered_map<uint64_t, std::vector<uint32_t>> byHash;
    for (size_t s = 0; s < n; ++s) {
        const uint64_t *k = ix.keys.data() + ix.offsets[s];
        const size_t len = ix.offsets[s + 1] - ix.offsets[s];
        uint64_t h = 1469598103934665603ull;
        for (size_t t = 0; t < len; ++t) {
            h ^= k[t];
            h *= 1099511628211ull;
        }
        uint32_t gid = UINT32_MAX;
        std::vector<uint32_t> &cands = byHash[h];
        for (uint32_t c : cands) {
            const size_t r = g.rep[c];
            if (ix.offsets[r + 1] - ix.offsets[r] == len &&
                std::equal(k, k + len, ix.keys.data() + ix.offsets[r])) {
                gid = c;
                break;
            }
        }
        if (gid == UINT32_MAX) {
            if (g.rep.size() >= kMaxGroups)
                return g;
            gid = static_cast<uint32_t>(g.rep.size());
            g.rep.push_back(s);
            cands.push_back(gid);
        }
        g.group[s] = gid;
    }
    const size_t ng = g.rep.size();
    g.pairOff.reserve(ng * (ng - 1) / 2 + 1);
    g.pairOff.push_back(0);
    for (size_t hi = 1; hi < ng; ++hi) {
        const uint64_t *ka = ix.keys.data() + ix.offsets[g.rep[hi]];
        const size_t na =
            ix.offsets[g.rep[hi] + 1] - ix.offsets[g.rep[hi]];
        for (size_t lo = 0; lo < hi; ++lo) {
            const uint64_t *kb =
                ix.keys.data() + ix.offsets[g.rep[lo]];
            const size_t nb =
                ix.offsets[g.rep[lo] + 1] - ix.offsets[g.rep[lo]];
            size_t a = 0, b = 0;
            while (a < na && b < nb) {
                if (ka[a] < kb[b]) {
                    ++a;
                } else if (kb[b] < ka[a]) {
                    ++b;
                } else {
                    g.ia.push_back(static_cast<uint32_t>(a));
                    g.ib.push_back(static_cast<uint32_t>(b));
                    ++a;
                    ++b;
                }
            }
            g.pairOff.push_back(g.ia.size());
        }
    }
    g.usable = true;
    return g;
}

/** Grouped weighted-Jaccard row i (integral weights, few key sets). */
void
jaccardRowGrouped(const SpanSetIndex &ix, const SetGroups &g, size_t i,
                  std::vector<double> &d)
{
    double *row = d.data() + i * (i - 1) / 2;
    const double *wa = ix.weights.data() + ix.offsets[i];
    const uint32_t gi = g.group[i];
    for (size_t j = 0; j < i; ++j) {
        const double *wb = ix.weights.data() + ix.offsets[j];
        const uint32_t gj = g.group[j];
        double inter = 0.0;
        if (gi == gj) {
            // Identical key vectors: the intersection is every entry.
            const size_t len = ix.offsets[i + 1] - ix.offsets[i];
            for (size_t t = 0; t < len; ++t)
                inter += (wa[t] < wb[t]) ? wa[t] : wb[t];
        } else {
            const uint32_t hi = gi > gj ? gi : gj;
            const uint32_t lo = gi > gj ? gj : gi;
            const double *wh = gi > gj ? wa : wb;
            const double *wl = gi > gj ? wb : wa;
            const size_t p = static_cast<size_t>(hi) * (hi - 1) / 2 + lo;
            for (size_t t = g.pairOff[p]; t < g.pairOff[p + 1]; ++t) {
                const double x = wh[g.ia[t]];
                const double y = wl[g.ib[t]];
                inter += (x < y) ? x : y;
            }
        }
        const double uni = ix.totals[i] + ix.totals[j] - inter;
        row[j] = uni <= 0.0 ? 0.0 : 1.0 - inter / uni;
    }
}

/** Vectorized weighted-Jaccard row i (integral-weight batches). */
void
jaccardRowIndexed(const SpanSetIndex &ix, size_t i,
                  std::vector<double> &d)
{
    double *row = d.data() + i * (i - 1) / 2;
    const uint64_t *ka = ix.keys.data() + ix.offsets[i];
    const double *wa = ix.weights.data() + ix.offsets[i];
    const size_t na = ix.offsets[i + 1] - ix.offsets[i];
    for (size_t j = 0; j < i; ++j) {
        const double inter = simd::sortedIntersectMinSum(
            ka, wa, na, ix.keys.data() + ix.offsets[j],
            ix.weights.data() + ix.offsets[j],
            ix.offsets[j + 1] - ix.offsets[j]);
        const double uni = ix.totals[i] + ix.totals[j] - inter;
        row[j] = uni <= 0.0 ? 0.0 : 1.0 - inter / uni;
    }
}

/** Legacy weighted-Jaccard row i (general weights). */
void
jaccardRow(const std::vector<WeightedSpanSet> &sets, size_t i,
           std::vector<double> &d)
{
    double *row = d.data() + i * (i - 1) / 2;
    for (size_t j = 0; j < i; ++j)
        row[j] = jaccardDistance(sets[i], sets[j]);
}

} // namespace

DistanceMatrix
DistanceMatrix::compute(size_t n,
                        const std::function<double(size_t, size_t)> &dist)
{
    DistanceMatrix m(n);
    for (size_t i = 1; i < n; ++i)
        for (size_t j = 0; j < i; ++j)
            m.d_[i * (i - 1) / 2 + j] = dist(i, j);
    return m;
}

DistanceMatrix
DistanceMatrix::fromSpanSets(const std::vector<WeightedSpanSet> &sets,
                             util::ThreadPool *pool)
{
    const size_t n = sets.size();
    DistanceMatrix m(n);
    if (n < 2)
        return m;
    const SpanSetIndex ix = buildIndex(sets);
    const SetGroups groups =
        ix.integral ? buildGroups(ix) : SetGroups{};
    auto row = [&](size_t i) {
        if (ix.integral && groups.usable)
            jaccardRowGrouped(ix, groups, i, m.d_);
        else if (ix.integral)
            jaccardRowIndexed(ix, i, m.d_);
        else
            jaccardRow(sets, i, m.d_);
    };
    if (!pool || pool->size() == 1) {
        for (size_t i = 1; i < n; ++i)
            row(i);
        return m;
    }
    // Row i costs i merge passes, so contiguous row chunks would load
    // the last worker quadratically. Pair cheap and expensive rows
    // (k <-> n-1-k) so every contiguous index chunk carries ~equal
    // work; each row writes a disjoint packed slice, so the matrix is
    // identical for any thread count.
    pool->parallelFor(n - 1, [&](size_t idx, size_t) {
        size_t i = (idx % 2 == 0) ? 1 + idx / 2 : n - 1 - idx / 2;
        row(i);
    });
    return m;
}

} // namespace sleuth::distance
