#pragma once

/**
 * @file
 * Zhang-Shasha ordered tree edit distance — the classical baseline the
 * paper rejects for trace similarity because it scales poorly with span
 * count (§3.3.1). Included so the distance-metric benchmark can compare
 * accuracy and cost against the weighted Jaccard metric.
 */

#include <string>
#include <vector>

#include "trace/trace.h"

namespace sleuth::distance {

/** An ordered, labeled tree. */
struct LabeledTree
{
    /** Node labels. */
    std::vector<std::string> labels;
    /** Children per node, in order. */
    std::vector<std::vector<int>> children;
    /** Root index. */
    int root = 0;
};

/**
 * Convert a trace into an ordered labeled tree: children ordered by
 * start time, labels formed from (service, name, kind, error status).
 */
LabeledTree traceToTree(const trace::Trace &trace,
                        const trace::TraceGraph &graph);

/**
 * Zhang-Shasha tree edit distance with unit costs (insert = delete = 1,
 * rename = 1 when labels differ, 0 otherwise). O(m^2 n^2) worst case.
 */
int treeEditDistance(const LabeledTree &a, const LabeledTree &b);

/**
 * TED normalized to [0, 1] by the total node count, giving a distance
 * comparable with jaccardDistance().
 */
double normalizedTreeEditDistance(const trace::Trace &a,
                                  const trace::Trace &b);

} // namespace sleuth::distance
