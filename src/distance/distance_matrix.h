#pragma once

/**
 * @file
 * Memoized pairwise distance matrix for storm-scale clustering.
 *
 * The storm pipeline needs the same trace-pair distances in four
 * places: core-distance estimation, the mutual-reachability MST,
 * representative selection, and the far-member guard. Evaluating a
 * distance oracle through a type-erased std::function at each site
 * recomputes identical weighted-Jaccard pairs many times over. A
 * DistanceMatrix is computed exactly once per batch — n(n-1)/2
 * evaluations, no more — and every consumer reads the packed
 * lower-triangular array directly.
 */

#include <cstddef>
#include <functional>
#include <vector>

#include "distance/trace_distance.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace sleuth::distance {

/** Symmetric pairwise distances, packed lower-triangular storage. */
class DistanceMatrix
{
  public:
    /** Empty matrix over zero items. */
    DistanceMatrix() = default;

    /** Zero-filled matrix over n items. */
    explicit DistanceMatrix(size_t n)
        : n_(n), d_(n < 2 ? 0 : n * (n - 1) / 2, 0.0)
    {
    }

    /**
     * Materialize a matrix from a distance oracle, invoking it exactly
     * n(n-1)/2 times (each unordered pair once, never the diagonal).
     */
    static DistanceMatrix compute(
        size_t n, const std::function<double(size_t, size_t)> &dist);

    /**
     * Pairwise weighted-Jaccard distances over pre-encoded span sets —
     * the default storm-batch path (one merge pass per pair, no oracle
     * indirection).
     *
     * @param pool optional worker pool; rows are computed in parallel
     *        (each row i writes the disjoint packed slice i(i-1)/2 ..
     *        i(i+1)/2, so the result is identical for any thread
     *        count). nullptr = serial.
     */
    static DistanceMatrix fromSpanSets(
        const std::vector<WeightedSpanSet> &sets,
        util::ThreadPool *pool = nullptr);

    /** Item count. */
    size_t size() const { return n_; }

    /** Distance between items i and j (0 on the diagonal). */
    double
    at(size_t i, size_t j) const
    {
        SLEUTH_ASSERT(i < n_ && j < n_, "distance matrix index");
        if (i == j)
            return 0.0;
        return d_[pack(i, j)];
    }

    /** Set the distance between two distinct items. */
    void
    set(size_t i, size_t j, double v)
    {
        SLEUTH_ASSERT(i < n_ && j < n_ && i != j,
                      "distance matrix set index");
        d_[pack(i, j)] = v;
    }

    /** Packed storage (row i > j holds i(i-1)/2 + j), for bulk reads. */
    const std::vector<double> &packed() const { return d_; }

    /**
     * Bulk-copy a smaller matrix into the head of this one. The packed
     * lower-triangular layout makes a k-item matrix a literal prefix
     * of any larger matrix over the same leading items, so an
     * incremental consumer (the cross-poll pipeline cache) can reuse
     * every previously computed pair with one copy and only compute
     * the appended rows.
     */
    void
    assignPrefix(const DistanceMatrix &src)
    {
        SLEUTH_ASSERT(src.n_ <= n_,
                      "prefix source larger than destination");
        std::copy(src.d_.begin(), src.d_.end(), d_.begin());
    }

  private:
    static size_t
    pack(size_t i, size_t j)
    {
        if (i < j)
            std::swap(i, j);
        return i * (i - 1) / 2 + j;
    }

    size_t n_ = 0;
    std::vector<double> d_;
};

} // namespace sleuth::distance
