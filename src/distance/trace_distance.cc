#include "trace_distance.h"

#include <algorithm>
#include <string>

namespace sleuth::distance {

namespace {

uint64_t
fnv1aAppend(uint64_t h, const std::string &s)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    h ^= 0x1f;  // field separator so ("ab","c") != ("a","bc")
    h *= 1099511628211ull;
    return h;
}

} // namespace

WeightedSpanSet
makeSpanSet(std::vector<std::pair<uint64_t, double>> entries)
{
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
        return a.first < b.first;
    });
    // Merge duplicate identifiers in place with summed weights.
    size_t w = 0;
    for (size_t r = 0; r < entries.size(); ++r) {
        if (w > 0 && entries[w - 1].first == entries[r].first)
            entries[w - 1].second += entries[r].second;
        else
            entries[w++] = entries[r];
    }
    entries.resize(w);
    return entries;
}

WeightedSpanSet
encodeSpanSet(const trace::Trace &trace, const trace::TraceGraph &graph,
              const SpanSetOptions &opts)
{
    std::vector<std::pair<uint64_t, double>> entries;
    entries.reserve(trace.spans.size());
    for (size_t i = 0; i < trace.spans.size(); ++i) {
        const trace::Span &s = trace.spans[i];
        uint64_t h = 1469598103934665603ull;
        h = fnv1aAppend(h, s.service);
        h = fnv1aAppend(h, s.name);
        h = fnv1aAppend(h, toString(s.kind));
        if (opts.includeErrorStatus)
            h = fnv1aAppend(h, s.hasError() ? "err" : "ok");
        // Calling path: ancestor names within maxAncestorDistance.
        int up = 0;
        for (int a = graph.parent(static_cast<int>(i));
             a >= 0 && up < opts.maxAncestorDistance;
             a = graph.parent(a), ++up) {
            const trace::Span &anc = trace.spans[static_cast<size_t>(a)];
            h = fnv1aAppend(h, anc.service);
            h = fnv1aAppend(h, anc.name);
        }
        entries.emplace_back(h, static_cast<double>(s.durationUs()));
    }
    return makeSpanSet(std::move(entries));
}

double
jaccardDistance(const WeightedSpanSet &a, const WeightedSpanSet &b)
{
    // |A ∩ B| = Σ min(w_a, w_b); |A ∪ B| = Σ max(w_a, w_b), with missing
    // identifiers treated as weight 0. Both sets are sorted by
    // identifier, so one two-pointer merge covers the union.
    double inter = 0.0;
    double uni = 0.0;
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i].first < b[j].first) {
            uni += a[i].second;
            ++i;
        } else if (b[j].first < a[i].first) {
            uni += b[j].second;
            ++j;
        } else {
            inter += std::min(a[i].second, b[j].second);
            uni += std::max(a[i].second, b[j].second);
            ++i;
            ++j;
        }
    }
    for (; i < a.size(); ++i)
        uni += a[i].second;
    for (; j < b.size(); ++j)
        uni += b[j].second;
    if (uni <= 0.0)
        return 0.0;
    return 1.0 - inter / uni;
}

double
traceDistance(const trace::Trace &a, const trace::Trace &b,
              const SpanSetOptions &opts)
{
    trace::TraceGraph ga = trace::TraceGraph::build(a);
    trace::TraceGraph gb = trace::TraceGraph::build(b);
    return jaccardDistance(encodeSpanSet(a, ga, opts),
                           encodeSpanSet(b, gb, opts));
}

} // namespace sleuth::distance
