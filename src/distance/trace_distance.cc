#include "trace_distance.h"

#include <algorithm>
#include <string>

namespace sleuth::distance {

namespace {

uint64_t
fnv1aAppend(uint64_t h, const std::string &s)
{
    for (char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    h ^= 0x1f;  // field separator so ("ab","c") != ("a","bc")
    h *= 1099511628211ull;
    return h;
}

} // namespace

WeightedSpanSet
encodeSpanSet(const trace::Trace &trace, const trace::TraceGraph &graph,
              const SpanSetOptions &opts)
{
    WeightedSpanSet set;
    set.reserve(trace.spans.size());
    for (size_t i = 0; i < trace.spans.size(); ++i) {
        const trace::Span &s = trace.spans[i];
        uint64_t h = 1469598103934665603ull;
        h = fnv1aAppend(h, s.service);
        h = fnv1aAppend(h, s.name);
        h = fnv1aAppend(h, toString(s.kind));
        if (opts.includeErrorStatus)
            h = fnv1aAppend(h, s.hasError() ? "err" : "ok");
        // Calling path: ancestor names within maxAncestorDistance.
        int up = 0;
        for (int a = graph.parent(static_cast<int>(i));
             a >= 0 && up < opts.maxAncestorDistance;
             a = graph.parent(a), ++up) {
            const trace::Span &anc = trace.spans[static_cast<size_t>(a)];
            h = fnv1aAppend(h, anc.service);
            h = fnv1aAppend(h, anc.name);
        }
        set[h] += static_cast<double>(s.durationUs());
    }
    return set;
}

double
jaccardDistance(const WeightedSpanSet &a, const WeightedSpanSet &b)
{
    // |A ∩ B| = Σ min(w_a, w_b); |A ∪ B| = Σ max(w_a, w_b), with missing
    // identifiers treated as weight 0.
    double inter = 0.0;
    double uni = 0.0;
    for (const auto &[id, wa] : a) {
        auto it = b.find(id);
        double wb = it == b.end() ? 0.0 : it->second;
        inter += std::min(wa, wb);
        uni += std::max(wa, wb);
    }
    for (const auto &[id, wb] : b) {
        if (!a.count(id))
            uni += wb;
    }
    if (uni <= 0.0)
        return 0.0;
    return 1.0 - inter / uni;
}

double
traceDistance(const trace::Trace &a, const trace::Trace &b,
              const SpanSetOptions &opts)
{
    trace::TraceGraph ga = trace::TraceGraph::build(a);
    trace::TraceGraph gb = trace::TraceGraph::build(b);
    return jaccardDistance(encodeSpanSet(a, ga, opts),
                           encodeSpanSet(b, gb, opts));
}

} // namespace sleuth::distance
