#pragma once

/**
 * @file
 * The Sleuth trace distance metric (paper §3.3.1, Eq. 1).
 *
 * A trace is encoded as a weighted set of span identifiers, where an
 * identifier is the tuple (service, name, kind, error status, names of
 * all ancestors within distance d_max) and the weight is the span
 * duration; spans sharing an identifier merge with summed weights. The
 * distance between two traces is the extended (weighted) Jaccard
 * distance between their sets.
 *
 * The set is stored as a vector of (identifier, weight) pairs sorted by
 * identifier, so jaccardDistance is a linear two-pointer merge over two
 * contiguous arrays — cache-friendly and allocation-free, which matters
 * on the O(n²) pairwise path of storm clustering.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "trace/trace.h"

namespace sleuth::distance {

/**
 * A trace encoded as a weighted set keyed by hashed span identifier:
 * (identifier, weight) pairs sorted ascending by identifier, keys
 * unique. Build with encodeSpanSet() or makeSpanSet().
 */
using WeightedSpanSet = std::vector<std::pair<uint64_t, double>>;

/** Options controlling span-identifier construction. */
struct SpanSetOptions
{
    /** Ancestors included in the identifier's calling-path component. */
    int maxAncestorDistance = 2;
    /** Include the span's error status in the identifier. */
    bool includeErrorStatus = true;
};

/**
 * Normalize raw (identifier, weight) entries into a WeightedSpanSet:
 * sorts by identifier and merges duplicate keys with summed weights.
 */
WeightedSpanSet makeSpanSet(
    std::vector<std::pair<uint64_t, double>> entries);

/**
 * Encode a trace as a weighted span set.
 *
 * @param trace the trace
 * @param graph its dependency graph (from TraceGraph::build)
 * @param opts identifier construction options
 */
WeightedSpanSet encodeSpanSet(const trace::Trace &trace,
                              const trace::TraceGraph &graph,
                              const SpanSetOptions &opts = {});

/**
 * Extended Jaccard distance between two weighted sets, normalized to
 * [0, 1]: 1 - sum(min w)/sum(max w) over the union of identifiers.
 * Two empty sets have distance 0.
 */
double jaccardDistance(const WeightedSpanSet &a, const WeightedSpanSet &b);

/** Convenience: encode both traces and return their distance. */
double traceDistance(const trace::Trace &a, const trace::Trace &b,
                     const SpanSetOptions &opts = {});

} // namespace sleuth::distance
