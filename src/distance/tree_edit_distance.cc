#include "tree_edit_distance.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace sleuth::distance {

LabeledTree
traceToTree(const trace::Trace &trace, const trace::TraceGraph &graph)
{
    LabeledTree t;
    size_t n = trace.spans.size();
    t.labels.resize(n);
    t.children.resize(n);
    for (size_t i = 0; i < n; ++i) {
        const trace::Span &s = trace.spans[i];
        t.labels[i] = s.service + "\x1f" + s.name + "\x1f" +
                      toString(s.kind) + "\x1f" +
                      (s.hasError() ? "err" : "ok");
        t.children[i] = graph.children(static_cast<int>(i));
        std::sort(t.children[i].begin(), t.children[i].end(),
                  [&](int a, int b) {
            const trace::Span &sa = trace.spans[static_cast<size_t>(a)];
            const trace::Span &sb = trace.spans[static_cast<size_t>(b)];
            if (sa.startUs != sb.startUs)
                return sa.startUs < sb.startUs;
            return sa.spanId < sb.spanId;
        });
    }
    t.root = graph.root();
    return t;
}

namespace {

/** Post-order view of a tree used by the Zhang-Shasha recurrence. */
struct PostOrder
{
    std::vector<std::string> labels;  ///< labels in post order (1-based)
    std::vector<int> lml;             ///< leftmost leaf per node (1-based)
    std::vector<int> keyroots;        ///< LR-keyroots, ascending
    int n = 0;
};

PostOrder
buildPostOrder(const LabeledTree &tree)
{
    PostOrder po;
    po.labels.push_back("");  // 1-based slot
    po.lml.push_back(0);

    // Iterative post-order traversal.
    struct Frame { int node; size_t child; int first_leaf; };
    std::vector<Frame> stack;
    stack.push_back({tree.root, 0, -1});
    std::vector<int> order_of(tree.labels.size(), 0);
    while (!stack.empty()) {
        Frame &f = stack.back();
        const auto &kids = tree.children[static_cast<size_t>(f.node)];
        if (f.child < kids.size()) {
            int c = kids[f.child++];
            stack.push_back({c, 0, -1});
        } else {
            int idx = ++po.n;
            order_of[static_cast<size_t>(f.node)] = idx;
            po.labels.push_back(tree.labels[static_cast<size_t>(f.node)]);
            int lml = kids.empty()
                ? idx
                : po.lml[static_cast<size_t>(
                      order_of[static_cast<size_t>(kids.front())])];
            po.lml.push_back(lml);
            stack.pop_back();
        }
    }

    // Keyroots: for each distinct leftmost-leaf value keep the highest
    // post-order index bearing it.
    std::map<int, int> highest;
    for (int i = 1; i <= po.n; ++i)
        highest[po.lml[static_cast<size_t>(i)]] = i;
    for (const auto &[lml, idx] : highest)
        po.keyroots.push_back(idx);
    std::sort(po.keyroots.begin(), po.keyroots.end());
    return po;
}

} // namespace

int
treeEditDistance(const LabeledTree &a, const LabeledTree &b)
{
    SLEUTH_ASSERT(!a.labels.empty() && !b.labels.empty());
    PostOrder ta = buildPostOrder(a);
    PostOrder tb = buildPostOrder(b);
    const int m = ta.n, n = tb.n;

    std::vector<std::vector<int>> td(
        static_cast<size_t>(m + 1),
        std::vector<int>(static_cast<size_t>(n + 1), 0));

    std::vector<std::vector<int>> fd(
        static_cast<size_t>(m + 2),
        std::vector<int>(static_cast<size_t>(n + 2), 0));

    auto rename_cost = [&](int i, int j) {
        return ta.labels[static_cast<size_t>(i)] ==
                       tb.labels[static_cast<size_t>(j)]
                   ? 0
                   : 1;
    };

    for (int i1 : ta.keyroots) {
        for (int j1 : tb.keyroots) {
            int li = ta.lml[static_cast<size_t>(i1)];
            int lj = tb.lml[static_cast<size_t>(j1)];
            fd[static_cast<size_t>(li - 1)][static_cast<size_t>(lj - 1)] =
                0;
            for (int i = li; i <= i1; ++i)
                fd[static_cast<size_t>(i)][static_cast<size_t>(lj - 1)] =
                    fd[static_cast<size_t>(i - 1)]
                      [static_cast<size_t>(lj - 1)] + 1;
            for (int j = lj; j <= j1; ++j)
                fd[static_cast<size_t>(li - 1)][static_cast<size_t>(j)] =
                    fd[static_cast<size_t>(li - 1)]
                      [static_cast<size_t>(j - 1)] + 1;
            for (int i = li; i <= i1; ++i) {
                for (int j = lj; j <= j1; ++j) {
                    int lmi = ta.lml[static_cast<size_t>(i)];
                    int lmj = tb.lml[static_cast<size_t>(j)];
                    if (lmi == li && lmj == lj) {
                        int d = std::min(
                            {fd[static_cast<size_t>(i - 1)]
                               [static_cast<size_t>(j)] + 1,
                             fd[static_cast<size_t>(i)]
                               [static_cast<size_t>(j - 1)] + 1,
                             fd[static_cast<size_t>(i - 1)]
                               [static_cast<size_t>(j - 1)] +
                                 rename_cost(i, j)});
                        fd[static_cast<size_t>(i)]
                          [static_cast<size_t>(j)] = d;
                        td[static_cast<size_t>(i)]
                          [static_cast<size_t>(j)] = d;
                    } else {
                        fd[static_cast<size_t>(i)]
                          [static_cast<size_t>(j)] = std::min(
                            {fd[static_cast<size_t>(i - 1)]
                               [static_cast<size_t>(j)] + 1,
                             fd[static_cast<size_t>(i)]
                               [static_cast<size_t>(j - 1)] + 1,
                             fd[static_cast<size_t>(lmi - 1)]
                               [static_cast<size_t>(lmj - 1)] +
                                 td[static_cast<size_t>(i)]
                                   [static_cast<size_t>(j)]});
                    }
                }
            }
        }
    }
    return td[static_cast<size_t>(m)][static_cast<size_t>(n)];
}

double
normalizedTreeEditDistance(const trace::Trace &a, const trace::Trace &b)
{
    trace::TraceGraph ga = trace::TraceGraph::build(a);
    trace::TraceGraph gb = trace::TraceGraph::build(b);
    LabeledTree ta = traceToTree(a, ga);
    LabeledTree tb = traceToTree(b, gb);
    int d = treeEditDistance(ta, tb);
    double total =
        static_cast<double>(ta.labels.size() + tb.labels.size());
    return total > 0.0 ? static_cast<double>(d) / total : 0.0;
}

} // namespace sleuth::distance
