#pragma once

/**
 * @file
 * Live span-stream driver: turns the discrete-event simulator into a
 * realistic collector feed for the online serving layer.
 *
 * Requests arrive as a Poisson process; each request's trace is
 * simulated under the chaos schedule's currently active fault plan and
 * its spans are shifted onto the arrival timeline. Spans are then
 * delivered the way real collectors deliver them: at their end time
 * plus jitter (so parents arrive after children, traces interleave, and
 * one trace spans many payloads), optionally duplicated. Delivery order
 * is a deterministic function of the seed; the configured ingest-thread
 * count only changes which thread performs each delivery, never the
 * result (the determinism contract of the online layer).
 */

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "online/service.h"
#include "sim/cluster_model.h"
#include "sim/simulator.h"
#include "synth/config.h"

namespace sleuth::online {

/** Live-load knobs. */
struct LiveSourceConfig
{
    uint64_t seed = 1;
    /** Requests to simulate. */
    size_t requests = 2000;
    /** Poisson arrival rate. */
    double arrivalRatePerSec = 400.0;
    /** Concurrent ingest threads (1 = deliver inline). */
    size_t ingestThreads = 1;
    /** Service poll cadence (event time). */
    int64_t pollIntervalUs = 250'000;
    /** Per-span delivery jitter bound (uniform in [0, jitterUs]). */
    int64_t jitterUs = 20'000;
    /** Probability a span is delivered twice. */
    double duplicateProb = 0.0;
    /** Timed fault phases (empty = healthy run). */
    chaos::FaultSchedule schedule;
    /**
     * Observability hook: called on the driver thread after each
     * service poll (ingest workers joined) and once after the final
     * drain, with the watermark just polled. Must not mutate the
     * service — tools use it to snapshot metrics mid-run.
     */
    std::function<void(int64_t watermarkUs)> onPoll;
};

/** Outcome of one live run. */
struct LiveRunResult
{
    size_t requests = 0;
    /** Span deliveries performed (duplicates included). */
    size_t spansDelivered = 0;
    /** Simulated traces violating their flow's SLO (ground truth). */
    size_t anomalousSimulated = 0;
    /** Wall time of the ingest+poll loop. */
    double ingestWallMillis = 0.0;
    /** Delivery throughput over the loop. */
    double spansPerSec = 0.0;
    /** Latest event time generated (arrival-shifted span end). */
    int64_t lastEventUs = 0;
    /**
     * Per analyzed incident: storm-onset watermark minus the
     * event-time storm onset — the earliest anomalous root span start
     * at/after the active fault phase began (falls back to the phase
     * start when the snapshot holds no such trace). Event-continuous,
     * so the distribution has sub-poll-interval resolution; measuring
     * from the phase start instead quantizes every latency to the
     * poll grid (the old bench bug).
     */
    std::vector<int64_t> detectionLatenciesUs;
};

/**
 * Endpoint metadata for an application: each flow's entry
 * "service/operation" mapped to the flow's SLO and index. When several
 * flows share a root rpc the endpoint takes the most permissive SLO
 * (flow identity is not recoverable from the span stream). Feed into
 * OnlineConfig::endpoints so the service judges traces like the
 * simulator's ground truth does.
 */
std::map<std::string, EndpointProfile>
endpointProfiles(const synth::AppConfig &app);

/**
 * Run a live load against an online service: simulate, deliver, poll,
 * and finally drain. The service is polled every pollIntervalUs of
 * event time after all earlier deliveries completed (ingest threads are
 * joined first), so results are reproducible for a fixed seed at any
 * thread count.
 */
LiveRunResult runLiveLoad(const synth::AppConfig &app,
                          const sim::ClusterModel &cluster,
                          const sim::SimParams &params,
                          const LiveSourceConfig &config,
                          OnlineService *service);

} // namespace sleuth::online
