#pragma once

/**
 * @file
 * Watermark-based span-to-trace assembly for the online serving layer.
 *
 * Collectors stream spans, not traces: the spans of one trace arrive
 * out of order, late, duplicated, and split across payloads (the batch
 * TraceCollector silently drops any trace split across payloads). The
 * SpanAssembler buffers spans per trace id and completes a trace when
 * the event-time watermark passes its quiet horizon — no span of the
 * trace has an end time within `quietGapUs` of the watermark, so any
 * further span would be late. Completed traces are validated
 * (TraceGraph) and emitted in a canonical deterministic form: spans
 * sorted by (startUs, spanId), traces sorted by (root start, traceId).
 * Ingestion is therefore order-insensitive — any arrival interleaving
 * of the same span multiset yields bitwise-identical output, the
 * property the online/batch differential and the multi-threaded ingest
 * determinism tests pin.
 *
 * The watermark is driven explicitly by drain(nowUs): the caller owns
 * the clock (wall time in production, simulated time in tests and
 * sleuth_serviced), and the watermark trails it by `latenessUs`.
 * Admission control bounds the backlog: past `maxPendingSpans`, spans
 * opening new traces are rejected (counted as backpressure) while
 * spans of already-pending traces are still admitted so in-flight
 * traces can complete.
 */

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "collector/collector.h"
#include "trace/columnar.h"
#include "trace/trace.h"

namespace sleuth::online {

/** One span of one trace, as delivered by a collector payload. */
struct SpanEvent
{
    std::string traceId;
    trace::Span span;
};

/** Assembly knobs. */
struct AssemblerConfig
{
    /** Watermark lag behind the drain clock (allowed lateness). */
    int64_t latenessUs = 100'000;
    /**
     * Quiet horizon: a pending trace completes when the watermark
     * passes its latest span end time plus this gap.
     */
    int64_t quietGapUs = 50'000;
    /**
     * Backlog budget (pending spans) before admission control rejects
     * spans that would open a new trace (0 = unlimited).
     */
    size_t maxPendingSpans = 0;
    /**
     * How long (event time) a completed/dropped trace id is remembered
     * so stragglers are classified late-after-eviction instead of
     * re-opening a ghost trace.
     */
    int64_t closedMemoryUs = 2'000'000;
};

/** Assembles streamed spans into validated traces. */
class SpanAssembler
{
  public:
    explicit SpanAssembler(AssemblerConfig config);

    /**
     * Ingest one span. Returns true when buffered; false when dropped
     * (duplicate within its pending trace, late after completion /
     * eviction, structurally empty ids, or backpressure).
     */
    bool add(const SpanEvent &event);

    /**
     * Advance the clock to nowUs (watermark = nowUs - latenessUs) and
     * emit every trace whose quiet horizon the watermark passed.
     * Invalid traces (orphan parents, duplicate roots, cycles) are
     * dropped and counted by reason. Emitted traces and their spans
     * are canonically sorted (see file comment).
     */
    std::vector<trace::Trace> drain(int64_t nowUs);

    /** Complete every pending trace regardless of watermark. */
    std::vector<trace::Trace> flush();

    /** Pending (buffered, incomplete) trace count. */
    size_t pendingTraces() const { return pending_.size(); }

    /** Pending span count across all buffered traces. */
    size_t pendingSpans() const { return pending_spans_; }

    /** Current watermark (event time; INT64_MIN before first drain). */
    int64_t watermarkUs() const { return watermark_; }

    /** Ingestion + drop statistics. */
    const collector::CollectorStats &stats() const { return stats_; }

  private:
    struct Pending
    {
        /**
         * Buffered spans in columnar form: vocabulary fields interned
         * once per assembler, span ids in a per-trace char arena. The
         * legacy row-oriented trace is materialized only at finalize,
         * in canonical span order.
         */
        trace::SpanColumns cols;
        /**
         * Span ids already buffered, for O(1) duplicate rejection (a
         * linear scan over the columns is O(n²) per trace at ingest
         * rates of hundreds of thousands of spans per second).
         */
        std::unordered_set<std::string> spanIds;
        /**
         * Latest span end time seen (the quiet-horizon anchor).
         * INT64_MIN, not 0: a zero sentinel would pin the anchor at
         * the epoch for traces whose spans all end before it, and
         * they would never go quiet. Always set by the first add().
         */
        int64_t lastEndUs = std::numeric_limits<int64_t>::min();
    };

    /** Validate, canonicalize, and count one completed trace. */
    bool finalize(const std::string &trace_id, Pending &p,
                  std::vector<trace::Trace> *out);

    /** Delta-flush hot-path counts into the obs registry. */
    void flushObs();

    void rememberClosed(const std::string &trace_id);
    void pruneClosed();

    AssemblerConfig config_;
    collector::CollectorStats stats_;
    /** Vocabulary shared by every pending trace of this assembler. */
    std::shared_ptr<trace::StringInterner> interner_;
    std::unordered_map<std::string, Pending> pending_;
    /** Recently completed/dropped trace ids -> close watermark. */
    std::unordered_map<std::string, int64_t> closed_;
    size_t pending_spans_ = 0;
    /**
     * Spans admitted since construction / since the last obs flush.
     * add() is the per-span hot path, so it only bumps this plain
     * member; drain() delta-flushes it into the process-wide counter
     * (a per-span sharded-counter add costs a measurable ~2% of
     * ingest throughput at hundreds of thousands of spans/s).
     */
    uint64_t spans_buffered_ = 0;
    uint64_t spans_buffered_flushed_ = 0;
    int64_t watermark_ = INT64_MIN;
};

} // namespace sleuth::online
