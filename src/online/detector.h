#pragma once

/**
 * @file
 * Sliding-window anomaly-storm detection over completed traces.
 *
 * Per endpoint (root-span "service/operation"), the detector maintains
 * a ring of event-time buckets, each holding counters (total traces,
 * anomalous traces, erroring traces) and a mergeable latency
 * QuantileSketch. The sliding window at watermark W covers the last
 * `windowBuckets` buckets ending at W; window quantiles are computed by
 * merging bucket sketches, so any arrival order of the same
 * observations yields the same assessment (the determinism contract of
 * the online layer).
 *
 * A storm opens for an endpoint when the window holds at least
 * `minWindowCount` traces of which at least `minAnomalous` — and at
 * least `onsetFraction` of the window — are anomalous; it clears when
 * the anomalous fraction drops to `clearFraction` or the window drains.
 * Hysteresis (onset > clear) keeps a marginal endpoint from flapping
 * open/closed on every evaluation.
 */

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "online/sketch.h"

namespace sleuth::online {

/** Detection knobs. */
struct DetectorConfig
{
    /** Event-time bucket width. */
    int64_t bucketUs = 1'000'000;
    /** Window length in buckets. */
    size_t windowBuckets = 10;
    /** Minimum window population before a verdict is attempted. */
    uint64_t minWindowCount = 8;
    /** Minimum anomalous traces in the window for storm onset. */
    uint64_t minAnomalous = 4;
    /** Anomalous fraction opening a storm. */
    double onsetFraction = 0.15;
    /** Anomalous fraction (strictly below) clearing a storm. */
    double clearFraction = 0.05;
    /** Relative accuracy of the per-bucket latency sketches. */
    double sketchAccuracy = 0.02;
};

/** One observed trace, reduced to what the detector needs. */
struct Observation
{
    std::string endpoint;
    /** Root span start (event time; assigns the bucket). */
    int64_t startUs = 0;
    /** End-to-end latency. */
    int64_t durationUs = 0;
    bool anomalous = false;
    bool error = false;
};

/** Aggregated window state of one endpoint at a watermark. */
struct WindowStats
{
    uint64_t count = 0;
    uint64_t anomalous = 0;
    uint64_t errors = 0;
    double p50Us = 0.0;
    double p99Us = 0.0;
};

/** A storm lifecycle transition produced by advance(). */
struct StormTransition
{
    enum class Kind { Onset, Clear };
    Kind kind = Kind::Onset;
    std::string endpoint;
    /** Watermark at which the transition was decided. */
    int64_t atUs = 0;
    WindowStats window;
};

/** Sliding-window per-endpoint storm detector. */
class StormDetector
{
  public:
    explicit StormDetector(DetectorConfig config);

    /** Fold one completed trace into its event-time bucket. */
    void observe(const Observation &obs);

    /**
     * Evaluate every endpoint's window at the watermark and return the
     * lifecycle transitions (onsets before clears, endpoints in
     * lexicographic order — deterministic).
     */
    std::vector<StormTransition> advance(int64_t watermarkUs);

    /** Window counters + quantiles of one endpoint at a watermark. */
    WindowStats windowStats(const std::string &endpoint,
                            int64_t watermarkUs) const;

    /** Merged latency sketch of one endpoint's window (for tests). */
    QuantileSketch windowSketch(const std::string &endpoint,
                                int64_t watermarkUs) const;

    /** True while the endpoint's storm is open. */
    bool storming(const std::string &endpoint) const;

    /** Endpoints currently in storm (lexicographic). */
    std::vector<std::string> stormingEndpoints() const;

    /**
     * Serialize every endpoint's ring + storm flag (durable store).
     * The config is NOT encoded — recovery constructs the detector
     * from the service configuration and decodes state into it.
     */
    void encodeState(util::BinaryWriter &w) const;

    /** Inverse of encodeState(); false on short/invalid input. */
    bool decodeState(util::BinaryReader &r);

  private:
    /**
     * Empty-slot sentinel. INT64_MIN is unreachable as a real bucket
     * index (floor division by a positive bucketUs ≥ 1 only yields it
     * for startUs = INT64_MIN itself, which bucketOf asserts against);
     * -1 is NOT — it is the legitimate bucket of event times in
     * [-bucketUs, 0), so using it as the sentinel made a fresh slot
     * look newer than any pre-epoch observation and silently drop it.
     */
    static constexpr int64_t kEmptyBucket =
        std::numeric_limits<int64_t>::min();

    struct Bucket
    {
        /** Absolute bucket index (startUs / bucketUs). */
        int64_t index = kEmptyBucket;
        uint64_t count = 0;
        uint64_t anomalous = 0;
        uint64_t errors = 0;
        QuantileSketch latency;
    };

    struct Endpoint
    {
        std::vector<Bucket> ring;
        bool storming = false;
    };

    int64_t bucketOf(int64_t startUs) const;

    DetectorConfig config_;
    /** Ordered map: advance() iterates endpoints deterministically. */
    std::map<std::string, Endpoint> endpoints_;
};

} // namespace sleuth::online
