#include "assembler.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace sleuth::online {

namespace {

/** Root-span start time (first span as fallback for malformed). */
int64_t
rootStartUs(const trace::Trace &t)
{
    for (const trace::Span &s : t.spans)
        if (s.parentSpanId.empty())
            return s.startUs;
    return t.spans.empty() ? 0 : t.spans.front().startUs;
}

} // namespace

SpanAssembler::SpanAssembler(AssemblerConfig config)
    : config_(config),
      interner_(std::make_shared<trace::StringInterner>())
{
    SLEUTH_ASSERT(config_.latenessUs >= 0 && config_.quietGapUs >= 0,
                  "assembler horizons must be non-negative");
}

bool
SpanAssembler::add(const SpanEvent &event)
{
    if (event.traceId.empty() || event.span.spanId.empty()) {
        stats_.countDrop(collector::DropReason::Malformed, 1);
        return false;
    }
    auto it = pending_.find(event.traceId);
    if (it == pending_.end()) {
        // Not pending: late straggler, ghost of a closed trace, or a
        // genuinely new trace subject to admission control.
        if (closed_.count(event.traceId)) {
            stats_.countDrop(collector::DropReason::LateAfterEviction,
                             1);
            return false;
        }
        if (watermark_ != INT64_MIN &&
            event.span.endUs + config_.quietGapUs <= watermark_) {
            // Would complete (incomplete) at the very next drain.
            stats_.countDrop(collector::DropReason::LateAfterEviction,
                             1);
            return false;
        }
        if (config_.maxPendingSpans > 0 &&
            pending_spans_ >= config_.maxPendingSpans) {
            stats_.countDrop(collector::DropReason::Backpressure, 1);
            return false;
        }
        it = pending_.emplace(event.traceId, Pending{}).first;
    }
    Pending &p = it->second;
    if (!p.spanIds.insert(event.span.spanId).second) {
        stats_.countDrop(collector::DropReason::Duplicate, 1);
        return false;
    }
    p.lastEndUs = std::max(p.lastEndUs, event.span.endUs);
    p.cols.append(event.span, *interner_);
    ++pending_spans_;
    ++spans_buffered_; // delta-flushed into obs by drain()
    return true;
}

bool
SpanAssembler::finalize(const std::string &trace_id, Pending &p,
                        std::vector<trace::Trace> *out)
{
    // Canonical span order: ingestion interleaving must not leak into
    // the emitted trace. Sort a permutation over the columns, then
    // materialize rows in that order.
    const size_t n = p.cols.size();
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (p.cols.startUs(a) != p.cols.startUs(b))
            return p.cols.startUs(a) < p.cols.startUs(b);
        return p.cols.spanId(a) < p.cols.spanId(b);
    });
    trace::Trace t;
    t.traceId = trace_id;
    t.spans.reserve(n);
    for (size_t i : order)
        t.spans.push_back(p.cols.materialize(i, *interner_));
    pending_spans_ -= n;
    trace::TraceGraph graph;
    std::string why;
    static obs::Counter &accepted = obs::counter(
        "sleuth_assembler_traces_total",
        "Traces completed by the span assembler",
        {{"result", "accepted"}});
    static obs::Counter &rejected = obs::counter(
        "sleuth_assembler_traces_total",
        "Traces completed by the span assembler",
        {{"result", "rejected"}});
    if (!trace::TraceGraph::tryBuild(t, &graph, &why)) {
        ++stats_.tracesRejected;
        stats_.countDrop(collector::classifyDefect(t), t.spans.size());
        rejected.add();
        return false;
    }
    ++stats_.tracesAccepted;
    stats_.spansAccepted += t.spans.size();
    out->push_back(std::move(t));
    accepted.add();
    return true;
}

std::vector<trace::Trace>
SpanAssembler::drain(int64_t nowUs)
{
    flushObs();
    watermark_ = std::max(watermark_, nowUs - config_.latenessUs);
    std::vector<trace::Trace> out;
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.lastEndUs + config_.quietGapUs <= watermark_) {
            finalize(it->first, it->second, &out);
            rememberClosed(it->first);
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
    pruneClosed();
    std::sort(out.begin(), out.end(),
              [](const trace::Trace &a, const trace::Trace &b) {
                  int64_t sa = rootStartUs(a);
                  int64_t sb = rootStartUs(b);
                  if (sa != sb)
                      return sa < sb;
                  return a.traceId < b.traceId;
              });
    return out;
}

void
SpanAssembler::flushObs()
{
    // Amortized flush of the per-span admission count (see
    // spans_buffered_): one counter add per drain/flush, not per span.
    static obs::Counter &buffered = obs::counter(
        "sleuth_assembler_spans_buffered_total",
        "Spans admitted into pending trace assembly");
    buffered.add(spans_buffered_ - spans_buffered_flushed_);
    spans_buffered_flushed_ = spans_buffered_;
}

std::vector<trace::Trace>
SpanAssembler::flush()
{
    flushObs();
    std::vector<trace::Trace> out;
    for (auto it = pending_.begin(); it != pending_.end();) {
        finalize(it->first, it->second, &out);
        rememberClosed(it->first);
        it = pending_.erase(it);
    }
    std::sort(out.begin(), out.end(),
              [](const trace::Trace &a, const trace::Trace &b) {
                  int64_t sa = rootStartUs(a);
                  int64_t sb = rootStartUs(b);
                  if (sa != sb)
                      return sa < sb;
                  return a.traceId < b.traceId;
              });
    return out;
}

void
SpanAssembler::rememberClosed(const std::string &trace_id)
{
    closed_[trace_id] =
        watermark_ == INT64_MIN ? 0 : watermark_;
}

void
SpanAssembler::pruneClosed()
{
    if (watermark_ == INT64_MIN)
        return;
    for (auto it = closed_.begin(); it != closed_.end();) {
        if (it->second + config_.closedMemoryUs < watermark_)
            it = closed_.erase(it);
        else
            ++it;
    }
}

} // namespace sleuth::online
