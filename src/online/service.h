#pragma once

/**
 * @file
 * The online serving layer (DESIGN.md §3.10): streaming span ingestion,
 * sliding-window storm detection, and incident-scoped RCA, glued into
 * one service.
 *
 * Ingestion is sharded by hash(traceId) so concurrent collector threads
 * contend only per shard; the shard count is a configuration constant —
 * NOT the thread count — so the same span stream lands in the same
 * shards no matter how many threads deliver it. All evaluation happens
 * at explicit poll(nowUs) points: shards are drained, completed traces
 * are merged into one canonically sorted batch, stored (under the
 * retention policy bounding memory), folded into the storm detector,
 * and the detector's window verdicts drive the incident lifecycle
 * (Open → Analyzed → Resolved). On storm onset the service snapshots
 * the detection window from the store — every anomalous trace plus a
 * deterministic bottom-k-by-hash sample of normal traces — and runs the
 * batch SleuthPipeline over the anomalous subset.
 *
 * Determinism contract: for a fixed configuration and span multiset
 * partitioned into the same poll intervals, the stored records, the
 * incidents, and every verdict within them are bitwise identical
 * regardless of ingest thread count or per-thread arrival interleaving.
 * The online/batch differential campaign invariant and the 1/2/8-thread
 * service test pin this.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "online/assembler.h"
#include "online/detector.h"
#include "online/incident.h"
#include "storage/trace_store.h"
#include "util/json.h"

namespace sleuth::online {

/** Workload metadata of one endpoint (root "service/operation"). */
struct EndpointProfile
{
    /** Latency SLO against which traces are judged (0 = unknown). */
    int64_t sloUs = 0;
    /** Operation flow behind the endpoint (-1 = unknown). */
    int flowIndex = -1;
};

/** Online serving knobs. */
struct OnlineConfig
{
    AssemblerConfig assembler;
    DetectorConfig detector;
    core::PipelineConfig pipeline;
    storage::RetentionConfig retention;
    /**
     * Ingest shard count. Fixed by configuration — independent of how
     * many threads call ingest() — so sharding never perturbs results.
     */
    size_t ingestShards = 4;
    /** Normal traces sampled into an incident snapshot (context). */
    size_t normalSampleSize = 16;
    /** Endpoint -> SLO/flow metadata; unknown endpoints get 0 / -1. */
    std::map<std::string, EndpointProfile> endpoints;
};

/** Cumulative counters of one OnlineService. */
struct OnlineStats
{
    /** Spans offered to ingest() (accepted or not). */
    size_t spansIngested = 0;
    /** Traces stored (post-assembly, post-validation). */
    size_t tracesStored = 0;
    /** Merged assembly statistics across all shards. */
    collector::CollectorStats assembly;
    /** Incident lifecycle counters. */
    size_t incidentsOpened = 0;
    size_t incidentsAnalyzed = 0;
    size_t incidentsResolved = 0;
};

/** The online serving layer. */
class OnlineService
{
  public:
    /** Model/encoder/profile are held by reference and must outlive. */
    OnlineService(const core::SleuthGnn &model,
                  core::FeatureEncoder &encoder,
                  const core::NormalProfile &profile, OnlineConfig config);

    /**
     * Ingest one span. Thread-safe: spans are routed to
     * hash(traceId) % ingestShards and buffered under that shard's
     * lock. Returns false when the span was dropped (see SpanAssembler).
     */
    bool ingest(const SpanEvent &event);

    /**
     * Advance the clock: drain every shard at nowUs, store and observe
     * the completed traces, evaluate storm windows, and run the
     * incident lifecycle. Must not race ingest() of spans that the
     * caller needs reflected at this poll (callers barrier their ingest
     * threads first). Returns indices (into incidents()) of incidents
     * whose state changed during this poll.
     */
    std::vector<size_t> poll(int64_t nowUs);

    /**
     * End of stream: complete all pending traces, evaluate, then
     * advance the watermark past every detection window so open storms
     * observe the silence, clear, and resolve their incident.
     */
    std::vector<size_t> drainAll(int64_t nowUs);

    /** All incidents, in open order. */
    const std::vector<Incident> &incidents() const { return incidents_; }

    /** The backing trace store (snapshot queries, tests, tools). */
    const storage::TraceStore &store() const { return store_; }

    /** Current watermark (event time). */
    int64_t watermarkUs() const { return watermark_; }

    /** Assembly backlog across shards (spans). */
    size_t backlogSpans() const;

    /** Cumulative counters (assembly stats merged across shards). */
    OnlineStats stats() const;

    /** Render stats + incident summaries for tools. */
    util::Json statsJson() const;

    /** SLO/flow metadata of an endpoint (default profile if unknown). */
    EndpointProfile profileFor(const std::string &endpoint) const;

  private:
    struct Shard
    {
        std::mutex mu;
        SpanAssembler assembler;
        size_t spansIngested = 0;

        explicit Shard(const AssemblerConfig &config)
            : assembler(config)
        {
        }
    };

    size_t shardOf(const std::string &trace_id) const;

    /** Store + observe one batch of completed traces (sorted). */
    void absorb(std::vector<trace::Trace> traces);

    /** Evaluate storms at the watermark; drive incident lifecycle. */
    std::vector<size_t> evaluate(int64_t watermark_us);

    /** Snapshot the detection window and run incident-scoped RCA. */
    void analyzeIncident(Incident *incident);

    OnlineConfig config_;
    core::SleuthPipeline pipeline_;
    std::vector<std::unique_ptr<Shard>> shards_;
    storage::TraceStore store_;
    StormDetector detector_;
    std::vector<Incident> incidents_;
    int64_t watermark_ = INT64_MIN;
    size_t traces_stored_ = 0;
    /** Ingest count already flushed into the obs registry (poll()). */
    size_t obs_ingested_flushed_ = 0;
    /** Id of the most recently stored record (snapshot high-water). */
    size_t last_record_id_ = 0;
};

} // namespace sleuth::online
