#pragma once

/**
 * @file
 * The online serving layer (DESIGN.md §3.10, §3.13): streaming span
 * ingestion, sliding-window storm detection, and incident-scoped RCA,
 * glued into one service.
 *
 * Ingestion is sharded by hash(traceId) so concurrent collector threads
 * contend only per shard; the shard count is a configuration constant —
 * NOT the thread count — so the same span stream lands in the same
 * shards no matter how many threads deliver it. Each shard's front end
 * is a bounded MPSC ring buffer (util::MpscRing): ingest() hashes the
 * trace id once, routes, and enqueues — producers never take a lock
 * and never run the assembler. All evaluation happens at explicit
 * poll(nowUs) points: each shard's ring is drained in one batch,
 * canonically re-sorted by event time (the ring interleaves producer
 * streams nondeterministically), optionally shed down to the per-poll
 * budget by the configured policy, and fed to that shard's assembler
 * in bulk; completed traces are merged into one canonically sorted
 * batch, stored (under the retention policy bounding memory), folded
 * into the storm detector, and the detector's window verdicts drive
 * the incident lifecycle (Open → Analyzed → Resolved). On storm onset
 * the service snapshots the detection window from the store — every
 * anomalous trace plus a deterministic bottom-k-by-hash sample of
 * normal traces — and runs the batch SleuthPipeline over the anomalous
 * subset.
 *
 * Backpressure is two-tiered (DESIGN.md §3.13). The deterministic
 * tier is poll-side: when a drained batch exceeds shedBudgetSpans,
 * the shed policy picks the survivors as a pure function of the event
 * multiset (drop-newest / drop-oldest by event end time, sample by
 * trace-id hash), so shed decisions are identical at any producer
 * thread count. The last-resort tier is enqueue-side: a physically
 * full ring drops the incoming span on the producer thread (counted
 * ring-full); only the count — not the victim set — is deterministic
 * there, and it is only reachable when one poll interval's offered
 * load exceeds the ring capacity.
 *
 * Determinism contract: for a fixed configuration and span multiset
 * partitioned into the same poll intervals — and offered load within
 * the ring capacity — the stored records, the incidents, and every
 * verdict within them are bitwise identical regardless of ingest
 * thread count or per-thread arrival interleaving, for every shed
 * policy. The online/batch differential campaign invariant and the
 * 1/2/8-thread service test pin this.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/pipeline.h"
#include "core/pipeline_cache.h"
#include "online/assembler.h"
#include "online/detector.h"
#include "online/durable_state.h"
#include "online/incident.h"
#include "storage/trace_store.h"
#include "util/binary.h"
#include "util/json.h"
#include "util/mpsc_ring.h"

namespace sleuth::online {

/** Workload metadata of one endpoint (root "service/operation"). */
struct EndpointProfile
{
    /** Latency SLO against which traces are judged (0 = unknown). */
    int64_t sloUs = 0;
    /** Operation flow behind the endpoint (-1 = unknown). */
    int flowIndex = -1;
};

/**
 * Load-shedding policy applied poll-side when a shard's drained batch
 * exceeds the per-poll budget. All three are deterministic functions
 * of the event multiset (never of producer interleaving):
 *  - DropNewest keeps the budget's worth of earliest events (by span
 *    end time) and sheds the newest tail;
 *  - DropOldest keeps the newest events and sheds the oldest head —
 *    the freshest data survives a burst;
 *  - Sample keeps the bottom-budget entries by trace-id hash, which
 *    is trace-coherent (a trace's spans share the hash, so whole
 *    traces survive or go together) and uniform across trace ids.
 */
enum class ShedPolicy { DropNewest, DropOldest, Sample };

/** Render a shed policy name ("drop-newest" / "drop-oldest" /
    "sample"). */
const char *toString(ShedPolicy p);

/** Parse a shed policy name; false when unrecognized. */
bool shedPolicyFromString(std::string_view name, ShedPolicy *out);

/** Online serving knobs. */
struct OnlineConfig
{
    AssemblerConfig assembler;
    DetectorConfig detector;
    core::PipelineConfig pipeline;
    storage::RetentionConfig retention;
    /**
     * Ingest shard count. Fixed by configuration — independent of how
     * many threads call ingest() — so sharding never perturbs results.
     */
    size_t ingestShards = 4;
    /**
     * Per-shard MPSC ring capacity in spans (rounded up to a power of
     * two). Bounds ingest-path memory; a poll interval offering more
     * spans than this to one shard hits the enqueue-side ring-full
     * drop. Sized so that in normal operation a poll always drains
     * the ring before it wraps.
     */
    size_t ringCapacitySpans = 1 << 16;
    /**
     * Per-shard per-poll admitted span budget (0 = unlimited). When a
     * drained batch exceeds it, shedPolicy picks the survivors
     * deterministically and the rest are counted as shed drops.
     */
    size_t shedBudgetSpans = 0;
    /** Policy picking shed survivors (see ShedPolicy). */
    ShedPolicy shedPolicy = ShedPolicy::DropNewest;
    /** Normal traces sampled into an incident snapshot (context). */
    size_t normalSampleSize = 16;
    /**
     * Memoize span-set encodings, distance-matrix pairs, and RCA
     * verdicts across incident analyses (DESIGN.md §3.14). Incident
     * snapshots of a persisting storm overlap heavily between polls;
     * the cache recomputes only the delta while keeping every verdict
     * bitwise identical to a full recompute (the incremental-repoll
     * campaign invariant pins this), so it is safe to leave on.
     */
    bool incrementalCache = true;
    /** Sizing/retention of the incremental pipeline cache. */
    core::PipelineCache::Config cacheConfig;
    /**
     * Re-analyze the open incident on later polls while its storm
     * persists and new traces have been stored: the detection window
     * re-anchors at the current watermark and the snapshot is rebuilt.
     * Off by default — the incident then keeps its onset-time verdict
     * (the historical behavior).
     */
    bool reanalyzeOpenIncidents = false;
    /** Endpoint -> SLO/flow metadata; unknown endpoints get 0 / -1. */
    std::map<std::string, EndpointProfile> endpoints;
};

/** Cumulative counters of one OnlineService. */
struct OnlineStats
{
    /** Spans offered to ingest() (accepted or not). */
    size_t spansIngested = 0;
    /** Traces stored (post-assembly, post-validation). */
    size_t tracesStored = 0;
    /** Merged assembly statistics across all shards. */
    collector::CollectorStats assembly;
    /** Incident lifecycle counters. */
    size_t incidentsOpened = 0;
    size_t incidentsAnalyzed = 0;
    size_t incidentsResolved = 0;
};

/** The online serving layer. */
class OnlineService
{
  public:
    /** Model/encoder/profile are held by reference and must outlive. */
    OnlineService(const core::SleuthGnn &model,
                  core::FeatureEncoder &encoder,
                  const core::NormalProfile &profile, OnlineConfig config);

    /**
     * Ingest one span. Thread-safe and lock-free: the trace id is
     * hashed once, the event is routed to hash % ingestShards, and
     * enqueued onto that shard's bounded MPSC ring. Returns false
     * only when the ring was physically full and the span was dropped
     * on the spot (counted ring-full); admission/validation drops are
     * decided later, at poll time. The const-ref overload copies the
     * event; the rvalue overload moves it into the ring.
     */
    bool ingest(const SpanEvent &event);
    bool ingest(SpanEvent &&event);

    /**
     * Advance the clock: drain every shard's ring at nowUs (canonical
     * event-time re-sort, then shed policy, then bulk assembly),
     * store and observe the completed traces, evaluate storm windows,
     * and run the incident lifecycle. Concurrent ingest() is safe,
     * but spans the caller needs reflected at this poll must be
     * enqueued before it (callers barrier their ingest threads
     * first). Returns indices (into incidents()) of incidents whose
     * state changed during this poll.
     */
    std::vector<size_t> poll(int64_t nowUs);

    /**
     * End of stream: complete all pending traces, evaluate, then
     * advance the watermark past every detection window so open storms
     * observe the silence, clear, and resolve their incident.
     */
    std::vector<size_t> drainAll(int64_t nowUs);

    /** All incidents, in open order. */
    const std::vector<Incident> &incidents() const { return incidents_; }

    /** The backing trace store (snapshot queries, tests, tools). */
    const storage::TraceStore &store() const { return store_; }

    /** Current watermark (event time). */
    int64_t watermarkUs() const { return watermark_; }

    /** Assembly backlog across shards (spans). */
    size_t backlogSpans() const;

    /** Cumulative counters (assembly stats merged across shards). */
    OnlineStats stats() const;

    /** Render stats + incident summaries for tools. */
    util::Json statsJson() const;

    /** SLO/flow metadata of an endpoint (default profile if unknown). */
    EndpointProfile profileFor(const std::string &endpoint) const;

    /** The incremental pipeline cache (hit/miss/invalidation stats). */
    const core::PipelineCache &cache() const { return cache_; }

    /**
     * Attach a durable store (DESIGN.md §3.15): recover whatever the
     * data directory holds (newest valid snapshot + committed WAL
     * polls), install the recovered state, and open the log for
     * appending. Must be called on a fresh service, before any
     * ingest. From then on every poll seals one commit group —
     * interner delta, span batch, eviction summary, incident updates,
     * poll marker — and the configured fsync policy decides when it
     * reaches disk. Returns what the recovery did; when `!info.ok`
     * the service is left non-durable and untouched.
     */
    RecoveryInfo enableDurability(const durable::DurableConfig &cfg,
                                  const RecoverOptions &opts = {});

    /**
     * Snapshot the full serving state now and compact the log: writes
     * snap-(k+1), rotates to segment k+1, deletes everything older.
     * Also runs automatically every `snapshotEveryPolls` commits.
     */
    bool snapshotNow(std::string *err = nullptr);

    /** True when a durable log is attached. */
    bool durable() const { return durable_log_ != nullptr; }

    /** Exact serving-state fingerprint (recovery equality checks). */
    uint64_t servingFingerprint() const;

  private:
    /** One ring entry: the event plus its precomputed trace-id hash
        (computed once in ingest(), reused by the sample policy). */
    struct RingEntry
    {
        SpanEvent event;
        uint64_t traceHash = 0;
    };

    struct Shard
    {
        /** Producer side: lock-free ring + relaxed counters. */
        util::MpscRing<RingEntry> ring;
        std::atomic<size_t> spansOffered{0};
        std::atomic<size_t> ringFullDrops{0};
        /**
         * Consumer side, guarded by mu: mu serializes poll()'s drain/
         * assembly against concurrent stats()/backlogSpans() readers.
         * ingest() never takes it.
         */
        std::mutex mu;
        SpanAssembler assembler;
        /** Poll-side drop accounting (shed + flushed ring-full). */
        collector::CollectorStats ringStats;
        /** Ring-full count already folded into ringStats. */
        size_t ringFullFlushed = 0;
        /** Scratch batch, reused across polls (capacity persists). */
        std::vector<RingEntry> batch;

        Shard(const AssemblerConfig &config, size_t ring_capacity)
            : ring(ring_capacity), assembler(config)
        {
        }
    };

    static size_t shardIndex(uint64_t hash, size_t shard_count);

    /** Drain, canonically sort, shed, and assemble one shard's ring;
        append completed traces to *completed (under shard.mu). */
    void drainShard(Shard *shard, int64_t nowUs,
                    std::vector<trace::Trace> *completed,
                    size_t *pending_spans, size_t *pending_traces);

    /** Store + observe one batch of completed traces (sorted). */
    void absorb(std::vector<trace::Trace> traces);

    /** Evaluate storms at the watermark; drive incident lifecycle. */
    std::vector<size_t> evaluate(int64_t watermark_us);

    /**
     * Snapshot the detection window anchored at watermark_us and run
     * incident-scoped RCA. Re-entrant for one incident: a later call
     * (reanalyzeOpenIncidents) clears the previous snapshot and
     * rebuilds it over the slid window.
     */
    void analyzeIncident(Incident *incident, int64_t watermark_us);

    /** Seal and (per policy) fsync this poll's WAL commit group. */
    void commitPoll(const std::vector<size_t> &changed);

    OnlineConfig config_;
    core::SleuthPipeline pipeline_;
    core::PipelineCache cache_;
    std::vector<std::unique_ptr<Shard>> shards_;
    storage::TraceStore store_;
    StormDetector detector_;
    std::vector<Incident> incidents_;
    int64_t watermark_ = INT64_MIN;
    size_t traces_stored_ = 0;
    /** Ingest count already flushed into the obs registry (poll()). */
    size_t obs_ingested_flushed_ = 0;
    /** Id of the most recently stored record (snapshot high-water). */
    size_t last_record_id_ = 0;

    /** Durable store (null until enableDurability()). */
    std::unique_ptr<durable::DurableLog> durable_log_;
    /**
     * This poll's SpanBatch payload under construction. Records are
     * captured at insert time, not at commit: retention triggered by a
     * later insert in the same poll can evict an earlier record of the
     * poll, whose columns would be gone by commit time. Replay
     * restores all then re-applies the logged evictions — same final
     * state either way.
     */
    util::BinaryWriter poll_batch_;
    size_t poll_batch_count_ = 0;
    /** Interner size already covered by logged deltas/snapshot. */
    size_t interner_logged_ = 0;
    /** Detector advances since the last commit (see PollMarker). */
    std::vector<int64_t> pending_advances_;
    /** Commits since the last snapshot rotation. */
    uint64_t polls_since_snapshot_ = 0;
};

} // namespace sleuth::online
