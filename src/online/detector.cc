#include "detector.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "obs/metrics.h"
#include "util/logging.h"

namespace sleuth::online {

StormDetector::StormDetector(DetectorConfig config) : config_(config)
{
    SLEUTH_ASSERT(config_.bucketUs > 0, "bucketUs must be positive");
    SLEUTH_ASSERT(config_.windowBuckets > 0,
                  "windowBuckets must be positive");
    SLEUTH_ASSERT(config_.clearFraction <= config_.onsetFraction,
                  "clear threshold above onset breaks hysteresis");
}

int64_t
StormDetector::bucketOf(int64_t startUs) const
{
    // Keep INT64_MIN free for the empty-slot sentinel (only startUs =
    // INT64_MIN itself could floor-divide to it).
    SLEUTH_ASSERT(startUs != std::numeric_limits<int64_t>::min(),
                  "event time out of range");
    // Floor division (event times may be negative in tests).
    int64_t q = startUs / config_.bucketUs;
    if (startUs % config_.bucketUs < 0)
        --q;
    return q;
}

void
StormDetector::observe(const Observation &obs)
{
    Endpoint &ep = endpoints_[obs.endpoint];
    if (ep.ring.empty()) {
        ep.ring.resize(config_.windowBuckets);
        for (Bucket &b : ep.ring)
            b.latency = QuantileSketch(config_.sketchAccuracy);
    }
    int64_t idx = bucketOf(obs.startUs);
    Bucket &b = ep.ring[static_cast<size_t>(
        ((idx % static_cast<int64_t>(ep.ring.size())) +
         static_cast<int64_t>(ep.ring.size())) %
        static_cast<int64_t>(ep.ring.size()))];
    if (b.index != kEmptyBucket && b.index > idx)
        return;  // a full ring length older than data already seen:
                 // outside any window the advancing watermark can read
    if (b.index != idx) {
        // The slot belongs to an older bucket: repurpose it.
        b.index = idx;
        b.count = 0;
        b.anomalous = 0;
        b.errors = 0;
        b.latency.clear();
    }
    ++b.count;
    if (obs.anomalous)
        ++b.anomalous;
    if (obs.error)
        ++b.errors;
    b.latency.add(static_cast<double>(obs.durationUs));
    static obs::Counter &observations = obs::counter(
        "sleuth_detector_observations_total",
        "Completed traces folded into storm-detector windows");
    observations.add();
}

WindowStats
StormDetector::windowStats(const std::string &endpoint,
                           int64_t watermarkUs) const
{
    WindowStats w;
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end())
        return w;
    int64_t hi = bucketOf(watermarkUs);
    int64_t lo = hi - static_cast<int64_t>(config_.windowBuckets) + 1;
    QuantileSketch merged(config_.sketchAccuracy);
    for (const Bucket &b : it->second.ring) {
        if (b.index == kEmptyBucket || b.index < lo || b.index > hi)
            continue;
        w.count += b.count;
        w.anomalous += b.anomalous;
        w.errors += b.errors;
        merged.merge(b.latency);
    }
    w.p50Us = merged.quantile(0.50);
    w.p99Us = merged.quantile(0.99);
    return w;
}

QuantileSketch
StormDetector::windowSketch(const std::string &endpoint,
                            int64_t watermarkUs) const
{
    QuantileSketch merged(config_.sketchAccuracy);
    auto it = endpoints_.find(endpoint);
    if (it == endpoints_.end())
        return merged;
    int64_t hi = bucketOf(watermarkUs);
    int64_t lo = hi - static_cast<int64_t>(config_.windowBuckets) + 1;
    for (const Bucket &b : it->second.ring)
        if (b.index != kEmptyBucket && b.index >= lo && b.index <= hi)
            merged.merge(b.latency);
    return merged;
}

std::vector<StormTransition>
StormDetector::advance(int64_t watermarkUs)
{
    std::vector<StormTransition> out;
    for (auto &[name, ep] : endpoints_) {
        WindowStats w = windowStats(name, watermarkUs);
        double fraction =
            w.count == 0 ? 0.0
                         : static_cast<double>(w.anomalous) /
                               static_cast<double>(w.count);
        if (!ep.storming) {
            if (w.count >= config_.minWindowCount &&
                w.anomalous >= config_.minAnomalous &&
                fraction >= config_.onsetFraction) {
                ep.storming = true;
                out.push_back({StormTransition::Kind::Onset, name,
                               watermarkUs, w});
            }
        } else {
            if (w.count == 0 || fraction < config_.clearFraction) {
                ep.storming = false;
                out.push_back({StormTransition::Kind::Clear, name,
                               watermarkUs, w});
            }
        }
    }
    // The emitted order is part of the determinism contract consumers
    // rely on (service.cc opens incidents from the first onset), so
    // sort canonically by (kind, endpoint) here rather than leaning on
    // the container's iteration order: onsets before clears, endpoints
    // lexicographic within each kind.
    std::sort(out.begin(), out.end(),
              [](const StormTransition &a, const StormTransition &b) {
                  return std::tie(a.kind, a.endpoint) <
                         std::tie(b.kind, b.endpoint);
              });
    static obs::Counter &onsets = obs::counter(
        "sleuth_detector_transitions_total",
        "Storm lifecycle transitions emitted by the detector",
        {{"kind", "onset"}});
    static obs::Counter &clears = obs::counter(
        "sleuth_detector_transitions_total",
        "Storm lifecycle transitions emitted by the detector",
        {{"kind", "clear"}});
    for (const StormTransition &t : out)
        (t.kind == StormTransition::Kind::Onset ? onsets : clears)
            .add();
    return out;
}

bool
StormDetector::storming(const std::string &endpoint) const
{
    auto it = endpoints_.find(endpoint);
    return it != endpoints_.end() && it->second.storming;
}

std::vector<std::string>
StormDetector::stormingEndpoints() const
{
    std::vector<std::string> out;
    for (const auto &[name, ep] : endpoints_)
        if (ep.storming)
            out.push_back(name);
    return out;
}

void
StormDetector::encodeState(util::BinaryWriter &w) const
{
    w.u32(static_cast<uint32_t>(endpoints_.size()));
    for (const auto &[name, ep] : endpoints_) {
        w.str(name);
        w.u8(ep.storming ? 1 : 0);
        w.u32(static_cast<uint32_t>(ep.ring.size()));
        for (const Bucket &b : ep.ring) {
            w.i64(b.index);
            w.u64(b.count);
            w.u64(b.anomalous);
            w.u64(b.errors);
            b.latency.encode(w);
        }
    }
}

bool
StormDetector::decodeState(util::BinaryReader &r)
{
    endpoints_.clear();
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
        std::string name = r.str();
        Endpoint ep;
        ep.storming = r.u8() != 0;
        uint32_t slots = r.u32();
        ep.ring.resize(slots);
        for (Bucket &b : ep.ring) {
            b.index = r.i64();
            b.count = r.u64();
            b.anomalous = r.u64();
            b.errors = r.u64();
            if (!b.latency.decode(r))
                return false;
        }
        endpoints_.emplace(std::move(name), std::move(ep));
    }
    return r.ok();
}

} // namespace sleuth::online
