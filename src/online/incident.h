#pragma once

/**
 * @file
 * Incident records of the online serving layer.
 *
 * On storm onset the service snapshots the sliding window's traces —
 * every anomalous trace plus a deterministic sample of normal ones —
 * and runs the batch SleuthPipeline incident-scoped over the anomalous
 * subset. The incident carries the full lifecycle (Open → Analyzed →
 * Resolved), the snapshot, the per-trace verdicts, the aggregated
 * root-cause ranking, and the latency accounting the serving bench
 * reports (detection latency in event time, RCA latency in wall time).
 */

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "trace/trace.h"
#include "util/binary.h"
#include "util/json.h"

namespace sleuth::online {

/** One detected anomaly storm and its incident-scoped RCA. */
struct Incident
{
    enum class State { Open, Analyzed, Resolved };

    size_t id = 0;
    State state = State::Open;

    /** Watermark at storm onset. */
    int64_t openedAtUs = 0;
    /** Watermark at which every storming endpoint had cleared. */
    int64_t resolvedAtUs = 0;
    /** Endpoints whose storms are attributed to this incident. */
    std::vector<std::string> endpoints;

    /** Snapshot window [windowStartUs, windowEndUs). */
    int64_t windowStartUs = 0;
    int64_t windowEndUs = 0;
    /**
     * Largest store record id admitted before the snapshot was taken.
     * Traces that finish assembling after analysis may still land
     * inside the time window; filtering a store query by
     * `record.id <= snapshotMaxRecordId` reconstructs the exact record
     * set the incident-scoped RCA saw (the online/batch differential
     * relies on this).
     */
    size_t snapshotMaxRecordId = 0;

    /** Snapshot: every anomalous trace of the window, canonical order
        (root start, then traceId). */
    std::vector<trace::Trace> anomalousTraces;
    std::vector<int64_t> slos;
    /** Deterministic sample of the window's normal traces (context). */
    std::vector<trace::Trace> normalSample;
    /** Normal traces considered for the sample (admission counter). */
    size_t normalsConsidered = 0;

    /** Incident-scoped pipeline result over anomalousTraces. */
    core::PipelineResult rca;
    /** Root-cause services ranked by per-trace verdict votes. */
    std::vector<std::pair<std::string, size_t>> rankedRootCauses;

    /** Onset watermark minus the earliest anomalous root start. */
    int64_t detectionLatencyUs = 0;
    /** Wall-clock time the incident-scoped RCA took. */
    double rcaMillis = 0.0;
};

/** Render a lifecycle state. */
const char *toString(Incident::State s);

/** Serialize an incident (traces reduced to ids; verdicts inline). */
util::Json toJson(const Incident &incident);

/**
 * Serialize the complete incident — lifecycle, trace snapshots, the
 * full pipeline result, ranking, latency accounting — for the durable
 * store (DESIGN.md §3.15). Recovery restores incidents verbatim from
 * these records instead of re-running the RCA, so a recovered daemon
 * reports bitwise-identical verdicts without the model loaded.
 */
void encodeIncident(util::BinaryWriter &w, const Incident &incident);

/** Inverse of encodeIncident(); false on short/invalid input. */
bool decodeIncident(util::BinaryReader &r, Incident *incident);

} // namespace sleuth::online
