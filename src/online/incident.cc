#include "incident.h"

#include "util/logging.h"

namespace sleuth::online {

const char *
toString(Incident::State s)
{
    switch (s) {
      case Incident::State::Open: return "open";
      case Incident::State::Analyzed: return "analyzed";
      case Incident::State::Resolved: return "resolved";
    }
    util::panic("invalid incident state");
}

util::Json
toJson(const Incident &incident)
{
    util::Json doc = util::Json::object();
    doc.set("id", incident.id);
    doc.set("state", toString(incident.state));
    doc.set("openedAtUs", incident.openedAtUs);
    doc.set("resolvedAtUs", incident.resolvedAtUs);
    util::Json endpoints = util::Json::array();
    for (const std::string &e : incident.endpoints)
        endpoints.push(util::Json(e));
    doc.set("endpoints", std::move(endpoints));
    doc.set("windowStartUs", incident.windowStartUs);
    doc.set("windowEndUs", incident.windowEndUs);
    doc.set("snapshotMaxRecordId", incident.snapshotMaxRecordId);
    doc.set("anomalousTraces", incident.anomalousTraces.size());
    doc.set("normalSample", incident.normalSample.size());
    doc.set("normalsConsidered", incident.normalsConsidered);
    doc.set("detectionLatencyUs", incident.detectionLatencyUs);
    doc.set("rcaMillis", incident.rcaMillis);

    util::Json verdicts = util::Json::array();
    for (size_t i = 0; i < incident.anomalousTraces.size(); ++i) {
        util::Json v = util::Json::object();
        v.set("traceId", incident.anomalousTraces[i].traceId);
        if (i < incident.rca.perTrace.size()) {
            const core::RcaResult &r = incident.rca.perTrace[i];
            util::Json services = util::Json::array();
            for (const std::string &svc : r.services)
                services.push(util::Json(svc));
            v.set("services", std::move(services));
            v.set("resolved", r.resolved);
            if (!r.error.empty())
                v.set("error", r.error);
        }
        verdicts.push(std::move(v));
    }
    doc.set("verdicts", std::move(verdicts));

    util::Json ranked = util::Json::array();
    for (const auto &[svc, votes] : incident.rankedRootCauses) {
        util::Json row = util::Json::object();
        row.set("service", svc);
        row.set("votes", votes);
        ranked.push(std::move(row));
    }
    doc.set("rankedRootCauses", std::move(ranked));
    return doc;
}

} // namespace sleuth::online
