#include "incident.h"

#include "util/logging.h"

namespace sleuth::online {

const char *
toString(Incident::State s)
{
    switch (s) {
      case Incident::State::Open: return "open";
      case Incident::State::Analyzed: return "analyzed";
      case Incident::State::Resolved: return "resolved";
    }
    util::panic("invalid incident state");
}

util::Json
toJson(const Incident &incident)
{
    util::Json doc = util::Json::object();
    doc.set("id", incident.id);
    doc.set("state", toString(incident.state));
    doc.set("openedAtUs", incident.openedAtUs);
    doc.set("resolvedAtUs", incident.resolvedAtUs);
    util::Json endpoints = util::Json::array();
    for (const std::string &e : incident.endpoints)
        endpoints.push(util::Json(e));
    doc.set("endpoints", std::move(endpoints));
    doc.set("windowStartUs", incident.windowStartUs);
    doc.set("windowEndUs", incident.windowEndUs);
    doc.set("snapshotMaxRecordId", incident.snapshotMaxRecordId);
    doc.set("anomalousTraces", incident.anomalousTraces.size());
    doc.set("normalSample", incident.normalSample.size());
    doc.set("normalsConsidered", incident.normalsConsidered);
    doc.set("detectionLatencyUs", incident.detectionLatencyUs);
    doc.set("rcaMillis", incident.rcaMillis);

    util::Json verdicts = util::Json::array();
    for (size_t i = 0; i < incident.anomalousTraces.size(); ++i) {
        util::Json v = util::Json::object();
        v.set("traceId", incident.anomalousTraces[i].traceId);
        if (i < incident.rca.perTrace.size()) {
            const core::RcaResult &r = incident.rca.perTrace[i];
            util::Json services = util::Json::array();
            for (const std::string &svc : r.services)
                services.push(util::Json(svc));
            v.set("services", std::move(services));
            v.set("resolved", r.resolved);
            if (!r.error.empty())
                v.set("error", r.error);
        }
        verdicts.push(std::move(v));
    }
    doc.set("verdicts", std::move(verdicts));

    util::Json ranked = util::Json::array();
    for (const auto &[svc, votes] : incident.rankedRootCauses) {
        util::Json row = util::Json::object();
        row.set("service", svc);
        row.set("votes", votes);
        ranked.push(std::move(row));
    }
    doc.set("rankedRootCauses", std::move(ranked));
    return doc;
}

namespace {

/** Row-oriented trace codec: incidents snapshot materialized traces,
    so they serialize by rows (the store's columns are logged
    separately and the two must not share an interner). */
void
encodeTrace(util::BinaryWriter &w, const trace::Trace &t)
{
    w.str(t.traceId);
    w.u32(static_cast<uint32_t>(t.spans.size()));
    for (const trace::Span &s : t.spans) {
        w.str(s.spanId);
        w.str(s.parentSpanId);
        w.str(s.service);
        w.str(s.name);
        w.u8(static_cast<uint8_t>(s.kind));
        w.i64(s.startUs);
        w.i64(s.endUs);
        w.u8(static_cast<uint8_t>(s.status));
        w.str(s.container);
        w.str(s.pod);
        w.str(s.node);
    }
}

bool
decodeTrace(util::BinaryReader &r, trace::Trace *t)
{
    t->traceId = r.str();
    uint32_t n = r.u32();
    t->spans.clear();
    t->spans.reserve(n);
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
        trace::Span s;
        s.spanId = r.str();
        s.parentSpanId = r.str();
        s.service = r.str();
        s.name = r.str();
        s.kind = static_cast<trace::SpanKind>(r.u8());
        s.startUs = r.i64();
        s.endUs = r.i64();
        s.status = static_cast<trace::StatusCode>(r.u8());
        s.container = r.str();
        s.pod = r.str();
        s.node = r.str();
        t->spans.push_back(std::move(s));
    }
    return r.ok();
}

void
encodeStringVec(util::BinaryWriter &w,
                const std::vector<std::string> &v)
{
    w.u32(static_cast<uint32_t>(v.size()));
    for (const std::string &s : v)
        w.str(s);
}

bool
decodeStringVec(util::BinaryReader &r, std::vector<std::string> *v)
{
    uint32_t n = r.u32();
    v->clear();
    v->reserve(n);
    for (uint32_t i = 0; i < n && r.ok(); ++i)
        v->push_back(r.str());
    return r.ok();
}

void
encodeStringSet(util::BinaryWriter &w, const std::set<std::string> &v)
{
    w.u32(static_cast<uint32_t>(v.size()));
    for (const std::string &s : v)
        w.str(s);
}

bool
decodeStringSet(util::BinaryReader &r, std::set<std::string> *v)
{
    uint32_t n = r.u32();
    v->clear();
    for (uint32_t i = 0; i < n && r.ok(); ++i)
        v->insert(r.str());
    return r.ok();
}

void
encodeRca(util::BinaryWriter &w, const core::RcaResult &v)
{
    encodeStringVec(w, v.services);
    encodeStringSet(w, v.pods);
    encodeStringSet(w, v.nodes);
    encodeStringSet(w, v.containers);
    w.u64(v.iterations);
    w.u8(v.resolved ? 1 : 0);
    w.str(v.error);
}

bool
decodeRca(util::BinaryReader &r, core::RcaResult *v)
{
    if (!decodeStringVec(r, &v->services) ||
        !decodeStringSet(r, &v->pods) ||
        !decodeStringSet(r, &v->nodes) ||
        !decodeStringSet(r, &v->containers))
        return false;
    v->iterations = r.u64();
    v->resolved = r.u8() != 0;
    v->error = r.str();
    return r.ok();
}

void
encodePipelineResult(util::BinaryWriter &w,
                     const core::PipelineResult &v)
{
    w.u32(static_cast<uint32_t>(v.perTrace.size()));
    for (const core::RcaResult &rr : v.perTrace)
        encodeRca(w, rr);
    w.u32(static_cast<uint32_t>(v.clusterLabels.size()));
    for (int label : v.clusterLabels)
        w.i64(label);
    w.i64(v.numClusters);
    w.u64(v.rcaInvocations);
    w.u64(v.distanceEvaluations);
    w.u64(v.skippedTraces);
    w.u64(v.prunedTraces);
    w.f64(v.pruneTraceKeepRatio);
    w.f64(v.pruneServiceKeepRatio);
}

bool
decodePipelineResult(util::BinaryReader &r, core::PipelineResult *v)
{
    uint32_t n = r.u32();
    v->perTrace.clear();
    v->perTrace.resize(n);
    for (uint32_t i = 0; i < n && r.ok(); ++i)
        if (!decodeRca(r, &v->perTrace[i]))
            return false;
    uint32_t labels = r.u32();
    v->clusterLabels.clear();
    v->clusterLabels.reserve(labels);
    for (uint32_t i = 0; i < labels && r.ok(); ++i)
        v->clusterLabels.push_back(static_cast<int>(r.i64()));
    v->numClusters = static_cast<int>(r.i64());
    v->rcaInvocations = r.u64();
    v->distanceEvaluations = r.u64();
    v->skippedTraces = r.u64();
    v->prunedTraces = r.u64();
    v->pruneTraceKeepRatio = r.f64();
    v->pruneServiceKeepRatio = r.f64();
    return r.ok();
}

} // namespace

void
encodeIncident(util::BinaryWriter &w, const Incident &incident)
{
    w.u64(incident.id);
    w.u8(static_cast<uint8_t>(incident.state));
    w.i64(incident.openedAtUs);
    w.i64(incident.resolvedAtUs);
    encodeStringVec(w, incident.endpoints);
    w.i64(incident.windowStartUs);
    w.i64(incident.windowEndUs);
    w.u64(incident.snapshotMaxRecordId);
    w.u32(static_cast<uint32_t>(incident.anomalousTraces.size()));
    for (const trace::Trace &t : incident.anomalousTraces)
        encodeTrace(w, t);
    w.u32(static_cast<uint32_t>(incident.slos.size()));
    for (int64_t slo : incident.slos)
        w.i64(slo);
    w.u32(static_cast<uint32_t>(incident.normalSample.size()));
    for (const trace::Trace &t : incident.normalSample)
        encodeTrace(w, t);
    w.u64(incident.normalsConsidered);
    encodePipelineResult(w, incident.rca);
    w.u32(static_cast<uint32_t>(incident.rankedRootCauses.size()));
    for (const auto &[svc, votes] : incident.rankedRootCauses) {
        w.str(svc);
        w.u64(votes);
    }
    w.i64(incident.detectionLatencyUs);
    w.f64(incident.rcaMillis);
}

bool
decodeIncident(util::BinaryReader &r, Incident *incident)
{
    incident->id = r.u64();
    uint8_t state = r.u8();
    if (!r.ok() ||
        state > static_cast<uint8_t>(Incident::State::Resolved))
        return false;
    incident->state = static_cast<Incident::State>(state);
    incident->openedAtUs = r.i64();
    incident->resolvedAtUs = r.i64();
    if (!decodeStringVec(r, &incident->endpoints))
        return false;
    incident->windowStartUs = r.i64();
    incident->windowEndUs = r.i64();
    incident->snapshotMaxRecordId = r.u64();
    uint32_t nAnomalous = r.u32();
    incident->anomalousTraces.clear();
    incident->anomalousTraces.resize(nAnomalous);
    for (uint32_t i = 0; i < nAnomalous && r.ok(); ++i)
        if (!decodeTrace(r, &incident->anomalousTraces[i]))
            return false;
    uint32_t nSlos = r.u32();
    incident->slos.clear();
    incident->slos.reserve(nSlos);
    for (uint32_t i = 0; i < nSlos && r.ok(); ++i)
        incident->slos.push_back(r.i64());
    uint32_t nNormal = r.u32();
    incident->normalSample.clear();
    incident->normalSample.resize(nNormal);
    for (uint32_t i = 0; i < nNormal && r.ok(); ++i)
        if (!decodeTrace(r, &incident->normalSample[i]))
            return false;
    incident->normalsConsidered = r.u64();
    if (!decodePipelineResult(r, &incident->rca))
        return false;
    uint32_t nRanked = r.u32();
    incident->rankedRootCauses.clear();
    incident->rankedRootCauses.reserve(nRanked);
    for (uint32_t i = 0; i < nRanked && r.ok(); ++i) {
        std::string svc = r.str();
        size_t votes = r.u64();
        incident->rankedRootCauses.emplace_back(std::move(svc), votes);
    }
    incident->detectionLatencyUs = r.i64();
    incident->rcaMillis = r.f64();
    return r.ok();
}

} // namespace sleuth::online
