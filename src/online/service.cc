#include "service.h"

#include <algorithm>
#include <chrono>
#include <climits>
#include <limits>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/strings.h"

namespace sleuth::online {

namespace {

const trace::Span *
rootSpan(const trace::Trace &t)
{
    for (const trace::Span &s : t.spans)
        if (s.parentSpanId.empty())
            return &s;
    return nullptr;
}

} // namespace

const char *
toString(ShedPolicy p)
{
    switch (p) {
      case ShedPolicy::DropNewest: return "drop-newest";
      case ShedPolicy::DropOldest: return "drop-oldest";
      case ShedPolicy::Sample: return "sample";
    }
    util::panic("invalid shed policy");
}

bool
shedPolicyFromString(std::string_view name, ShedPolicy *out)
{
    if (name == "drop-newest") {
        *out = ShedPolicy::DropNewest;
        return true;
    }
    if (name == "drop-oldest") {
        *out = ShedPolicy::DropOldest;
        return true;
    }
    if (name == "sample") {
        *out = ShedPolicy::Sample;
        return true;
    }
    return false;
}

OnlineService::OnlineService(const core::SleuthGnn &model,
                             core::FeatureEncoder &encoder,
                             const core::NormalProfile &profile,
                             OnlineConfig config)
    : config_(std::move(config)),
      pipeline_(model, encoder, profile, config_.pipeline),
      cache_(config_.cacheConfig),
      store_(config_.retention),
      detector_(config_.detector)
{
    SLEUTH_ASSERT(config_.ingestShards > 0,
                  "at least one ingest shard is required");
    SLEUTH_ASSERT(config_.ringCapacitySpans > 0,
                  "ring capacity must be positive");
    shards_.reserve(config_.ingestShards);
    for (size_t i = 0; i < config_.ingestShards; ++i)
        shards_.push_back(std::make_unique<Shard>(
            config_.assembler, config_.ringCapacitySpans));
}

size_t
OnlineService::shardIndex(uint64_t hash, size_t shard_count)
{
    return static_cast<size_t>(hash % shard_count);
}

EndpointProfile
OnlineService::profileFor(const std::string &endpoint) const
{
    auto it = config_.endpoints.find(endpoint);
    return it == config_.endpoints.end() ? EndpointProfile{} : it->second;
}

bool
OnlineService::ingest(const SpanEvent &event)
{
    return ingest(SpanEvent(event));
}

bool
OnlineService::ingest(SpanEvent &&event)
{
    // Hash once per event: the same value routes the shard, rides the
    // ring for the sample shed policy, and (via the store) seeds the
    // incident normal-trace sample — no re-hash on the ingest path.
    uint64_t hash = util::fnv1a(event.traceId);
    Shard &shard = *shards_[shardIndex(hash, shards_.size())];
    // The hot path only bumps relaxed shard-local counters; poll()
    // delta-flushes the sums into the obs registry (a per-span
    // counter add costs a measurable ~2% of ingest throughput).
    shard.spansOffered.fetch_add(1, std::memory_order_relaxed);
    RingEntry entry{std::move(event), hash};
    if (!shard.ring.tryPush(std::move(entry))) {
        // Physically full: last-resort enqueue-side drop. Only the
        // count is deterministic here (see file comment in service.h).
        shard.ringFullDrops.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    return true;
}

void
OnlineService::drainShard(Shard *shard, int64_t nowUs,
                          std::vector<trace::Trace> *completed,
                          size_t *pending_spans,
                          size_t *pending_traces)
{
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->batch.clear();
    shard->ring.drainInto(&shard->batch);
    std::vector<RingEntry> &batch = shard->batch;

    // The ring interleaves producer streams nondeterministically;
    // canonical event-time order restores a batch that is a pure
    // function of the event multiset before any decision is taken.
    // Duplicate deliveries tie on every key and are content-identical,
    // so an unstable sort is still deterministic.
    std::sort(batch.begin(), batch.end(),
              [](const RingEntry &a, const RingEntry &b) {
                  if (a.event.span.endUs != b.event.span.endUs)
                      return a.event.span.endUs < b.event.span.endUs;
                  if (a.event.traceId != b.event.traceId)
                      return a.event.traceId < b.event.traceId;
                  return a.event.span.spanId < b.event.span.spanId;
              });

    // Poll-side deterministic shedding: survivors are a pure function
    // of the (sorted) batch, never of producer interleaving.
    size_t begin = 0;
    size_t end = batch.size();
    size_t budget = config_.shedBudgetSpans;
    if (budget > 0 && batch.size() > budget) {
        size_t shed = batch.size() - budget;
        switch (config_.shedPolicy) {
          case ShedPolicy::DropNewest:
            end = budget; // keep the oldest events
            break;
          case ShedPolicy::DropOldest:
            begin = shed; // keep the newest events
            break;
          case ShedPolicy::Sample:
            // Bottom-budget by (traceHash, traceId, spanId):
            // trace-coherent (spans of one trace sort adjacently) and
            // uniform across trace ids. Reuses the hash computed at
            // ingest.
            std::sort(batch.begin(), batch.end(),
                      [](const RingEntry &a, const RingEntry &b) {
                          if (a.traceHash != b.traceHash)
                              return a.traceHash < b.traceHash;
                          if (a.event.traceId != b.event.traceId)
                              return a.event.traceId <
                                     b.event.traceId;
                          return a.event.span.spanId <
                                 b.event.span.spanId;
                      });
            end = budget;
            // Restore event-time order among the survivors so the
            // assembler feed stays canonical.
            std::sort(batch.begin(), batch.begin() + end,
                      [](const RingEntry &a, const RingEntry &b) {
                          if (a.event.span.endUs != b.event.span.endUs)
                              return a.event.span.endUs <
                                     b.event.span.endUs;
                          if (a.event.traceId != b.event.traceId)
                              return a.event.traceId <
                                     b.event.traceId;
                          return a.event.span.spanId <
                                 b.event.span.spanId;
                      });
            break;
        }
        shard->ringStats.countDrop(collector::DropReason::Shed, shed);
        static obs::Counter &shedCount = obs::counter(
            "sleuth_service_shed_spans_total",
            "Spans shed poll-side by the backpressure policy");
        shedCount.add(shed);
    }

    // Fold the enqueue-side ring-full drops accumulated since the
    // last poll into the shard's poll-side stats block.
    size_t ring_full =
        shard->ringFullDrops.load(std::memory_order_relaxed);
    if (ring_full > shard->ringFullFlushed) {
        shard->ringStats.countDrop(collector::DropReason::RingFull,
                                   ring_full - shard->ringFullFlushed);
        shard->ringFullFlushed = ring_full;
    }

    // Bulk-feed the survivors in canonical order, then advance the
    // assembler's watermark.
    for (size_t i = begin; i < end; ++i)
        shard->assembler.add(batch[i].event);
    batch.clear();
    std::vector<trace::Trace> done = shard->assembler.drain(nowUs);
    completed->insert(completed->end(),
                      std::make_move_iterator(done.begin()),
                      std::make_move_iterator(done.end()));
    *pending_spans += shard->assembler.pendingSpans();
    *pending_traces += shard->assembler.pendingTraces();
}

void
OnlineService::absorb(std::vector<trace::Trace> traces)
{
    for (trace::Trace &t : traces) {
        const trace::Span *root = rootSpan(t);
        // The assembler only emits TraceGraph-validated traces, which
        // always have exactly one root.
        SLEUTH_ASSERT(root != nullptr, "assembled trace lost its root");
        std::string endpoint = root->service + "/" + root->name;
        EndpointProfile prof = profileFor(endpoint);

        Observation obs;
        obs.endpoint = std::move(endpoint);
        obs.startUs = root->startUs;
        obs.durationUs = root->durationUs();
        obs.error = root->hasError();
        obs.anomalous =
            obs.error || (prof.sloUs > 0 && obs.durationUs > prof.sloUs);

        last_record_id_ =
            store_.insert(std::move(t), prof.sloUs, prof.flowIndex);
        ++traces_stored_;
        // Capture the record's bytes while it is guaranteed live (a
        // record is never evicted during its own insert; see the
        // poll_batch_ comment in service.h).
        if (durable_log_) {
            appendSpanBatchRecord(poll_batch_,
                                  store_.at(last_record_id_));
            ++poll_batch_count_;
        }

        detector_.observe(obs);
    }
    static obs::Counter &stored = obs::counter(
        "sleuth_service_traces_stored_total",
        "Assembled traces absorbed into the online trace store");
    stored.add(traces.size());
}

std::vector<size_t>
OnlineService::poll(int64_t nowUs)
{
    std::vector<trace::Trace> completed;
    size_t pending_spans = 0;
    size_t pending_traces = 0;
    size_t ingested_total = 0;
    for (auto &shard : shards_) {
        drainShard(shard.get(), nowUs, &completed, &pending_spans,
                   &pending_traces);
        ingested_total +=
            shard->spansOffered.load(std::memory_order_relaxed);
    }
    // Amortized flush of the per-span ingest count (see ingest()).
    static obs::Counter &ingested = obs::counter(
        "sleuth_service_spans_ingested_total",
        "Spans offered to the online service (pre-admission)");
    ingested.add(ingested_total - obs_ingested_flushed_);
    obs_ingested_flushed_ = ingested_total;
    // Shards emit canonically; re-sort the merged batch so the shard
    // count never shows in downstream order.
    std::sort(completed.begin(), completed.end(),
              [](const trace::Trace &a, const trace::Trace &b) {
                  const trace::Span *ra = rootSpan(a);
                  const trace::Span *rb = rootSpan(b);
                  int64_t sa = ra ? ra->startUs : 0;
                  int64_t sb = rb ? rb->startUs : 0;
                  if (sa != sb)
                      return sa < sb;
                  return a.traceId < b.traceId;
              });
    static obs::Histogram &batch = obs::histogram(
        "sleuth_service_poll_batch_traces",
        "Traces completed per service poll");
    batch.record(static_cast<double>(completed.size()));
    absorb(std::move(completed));
    watermark_ = std::max(watermark_, nowUs - config_.assembler.latenessUs);
    // Instantaneous health gauges, refreshed once per poll.
    static obs::Gauge &backlog = obs::gauge(
        "sleuth_service_backlog_spans",
        "Spans buffered across ingest-shard assemblers");
    static obs::Gauge &pendingTraces = obs::gauge(
        "sleuth_service_pending_traces",
        "Incomplete traces buffered across ingest shards");
    static obs::Gauge &lag = obs::gauge(
        "sleuth_service_watermark_lag_us",
        "Distance from the poll clock to the event-time watermark");
    static obs::Gauge &stored = obs::gauge(
        "sleuth_service_stored_records",
        "Trace records currently retained by the online store");
    backlog.set(static_cast<int64_t>(pending_spans));
    pendingTraces.set(static_cast<int64_t>(pending_traces));
    lag.set(nowUs - watermark_);
    stored.set(static_cast<int64_t>(store_.size()));
    std::vector<size_t> changed = evaluate(watermark_);
    if (durable_log_)
        commitPoll(changed);
    return changed;
}

std::vector<size_t>
OnlineService::drainAll(int64_t nowUs)
{
    std::vector<size_t> changed = poll(nowUs);
    std::vector<trace::Trace> completed;
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        std::vector<trace::Trace> done = shard->assembler.flush();
        completed.insert(completed.end(),
                         std::make_move_iterator(done.begin()),
                         std::make_move_iterator(done.end()));
    }
    std::sort(completed.begin(), completed.end(),
              [](const trace::Trace &a, const trace::Trace &b) {
                  const trace::Span *ra = rootSpan(a);
                  const trace::Span *rb = rootSpan(b);
                  int64_t sa = ra ? ra->startUs : 0;
                  int64_t sb = rb ? rb->startUs : 0;
                  if (sa != sb)
                      return sa < sb;
                  return a.traceId < b.traceId;
              });
    absorb(std::move(completed));
    // Evaluate at nowUs itself: the flush already forfeited lateness.
    watermark_ = std::max(watermark_, nowUs);
    std::vector<size_t> more = evaluate(watermark_);
    changed.insert(changed.end(), more.begin(), more.end());
    // The stream is over: advance past every detection window so the
    // storms observe the silence, clear, and resolve open incidents.
    watermark_ +=
        (static_cast<int64_t>(config_.detector.windowBuckets) + 1) *
        config_.detector.bucketUs;
    more = evaluate(watermark_);
    changed.insert(changed.end(), more.begin(), more.end());
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());
    // The flush + resolution sweep is one more commit group (poll()
    // above already sealed its own). Re-logging an incident already
    // updated this call is an idempotent overwrite on replay.
    if (durable_log_)
        commitPoll(changed);
    return changed;
}

std::vector<size_t>
OnlineService::evaluate(int64_t watermark_us)
{
    // Storm hysteresis makes the flags depend on the whole advance
    // sequence, so each advance is journaled for the poll marker.
    if (durable_log_)
        pending_advances_.push_back(watermark_us);
    std::vector<StormTransition> transitions =
        detector_.advance(watermark_us);
    std::vector<size_t> changed;

    // At most one incident is open at a time: concurrent endpoint
    // storms are one outage seen from several endpoints.
    Incident *open = nullptr;
    size_t open_index = 0;
    if (!incidents_.empty() &&
        incidents_.back().state != Incident::State::Resolved) {
        open = &incidents_.back();
        open_index = incidents_.size() - 1;
    }

    std::vector<std::string> onsets;
    for (const StormTransition &t : transitions)
        if (t.kind == StormTransition::Kind::Onset)
            onsets.push_back(t.endpoint);

    if (!onsets.empty()) {
        if (open == nullptr) {
            Incident incident;
            incident.id = incidents_.size();
            incident.state = Incident::State::Open;
            incident.openedAtUs = watermark_us;
            incident.endpoints = onsets;
            incidents_.push_back(std::move(incident));
            open = &incidents_.back();
            open_index = incidents_.size() - 1;
            static obs::Counter &opened = obs::counter(
                "sleuth_service_incidents_total",
                "Incident lifecycle events", {{"event", "opened"}});
            opened.add();
            analyzeIncident(open, watermark_us);
            changed.push_back(open_index);
        } else {
            for (const std::string &e : onsets)
                if (std::find(open->endpoints.begin(),
                              open->endpoints.end(),
                              e) == open->endpoints.end())
                    open->endpoints.push_back(e);
            changed.push_back(open_index);
        }
    }

    // A persisting storm keeps depositing traces into the detection
    // window; optionally refresh the open incident's verdict over the
    // slid window. The incremental cache makes each refresh cost only
    // the delta since the previous snapshot.
    if (config_.reanalyzeOpenIncidents && open != nullptr &&
        open->state == Incident::State::Analyzed &&
        !detector_.stormingEndpoints().empty() &&
        last_record_id_ != open->snapshotMaxRecordId) {
        analyzeIncident(open, watermark_us);
        changed.push_back(open_index);
    }

    if (open != nullptr && detector_.stormingEndpoints().empty()) {
        open->state = Incident::State::Resolved;
        open->resolvedAtUs = watermark_us;
        static obs::Counter &resolved = obs::counter(
            "sleuth_service_incidents_total",
            "Incident lifecycle events", {{"event", "resolved"}});
        resolved.add();
        changed.push_back(open_index);
    }
    static obs::Gauge &openGauge = obs::gauge(
        "sleuth_service_open_incidents",
        "Incidents currently open or analyzed but unresolved");
    openGauge.set(open != nullptr &&
                          open->state != Incident::State::Resolved
                      ? 1
                      : 0);

    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()),
                  changed.end());
    return changed;
}

void
OnlineService::analyzeIncident(Incident *incident, int64_t watermark_us)
{
    // Re-analysis rebuilds the snapshot over the slid window: clear
    // everything derived from the previous one first.
    incident->anomalousTraces.clear();
    incident->slos.clear();
    incident->normalSample.clear();
    incident->normalsConsidered = 0;
    incident->rankedRootCauses.clear();

    // The detector window at watermark W covers buckets lo..hi, i.e.
    // event times [lo*bucketUs, (hi+1)*bucketUs). Snapshot exactly it.
    int64_t bucket = config_.detector.bucketUs;
    int64_t hi = watermark_us / bucket;
    if (watermark_us % bucket < 0)
        --hi;
    int64_t lo =
        hi - static_cast<int64_t>(config_.detector.windowBuckets) + 1;
    incident->windowStartUs = lo * bucket;
    incident->windowEndUs = (hi + 1) * bucket;
    // Pin the store high-water mark: traces finishing assembly after
    // this point may carry start times inside the window but were not
    // part of the snapshot. Queries filtered by id <= this reproduce it.
    incident->snapshotMaxRecordId = last_record_id_;

    storage::Query q;
    q.minStartUs = incident->windowStartUs;
    q.maxStartUs = incident->windowEndUs;
    std::vector<const storage::Record *> window = store_.query(q);

    std::vector<const storage::Record *> normals;
    for (const storage::Record *r : window) {
        if (r->anomalous()) {
            incident->anomalousTraces.push_back(r->trace());
            incident->slos.push_back(r->sloUs);
        } else {
            normals.push_back(r);
        }
    }
    incident->normalsConsidered = normals.size();

    // Canonical snapshot order: (root start, traceId). The batch side
    // of the online/batch differential sorts identically, so HDBSCAN
    // sees the same batch order on both paths.
    std::vector<size_t> order(incident->anomalousTraces.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const trace::Trace &ta = incident->anomalousTraces[a];
        const trace::Trace &tb = incident->anomalousTraces[b];
        const trace::Span *ra = rootSpan(ta);
        const trace::Span *rb = rootSpan(tb);
        int64_t sa = ra ? ra->startUs : 0;
        int64_t sb = rb ? rb->startUs : 0;
        if (sa != sb)
            return sa < sb;
        return ta.traceId < tb.traceId;
    });
    std::vector<trace::Trace> sorted_traces;
    std::vector<int64_t> sorted_slos;
    sorted_traces.reserve(order.size());
    sorted_slos.reserve(order.size());
    for (size_t i : order) {
        sorted_traces.push_back(std::move(incident->anomalousTraces[i]));
        sorted_slos.push_back(incident->slos[i]);
    }
    incident->anomalousTraces = std::move(sorted_traces);
    incident->slos = std::move(sorted_slos);

    // Deterministic normal sample: bottom-k by (hash, traceId) — a
    // uniform reservoir-equivalent that never depends on store order.
    // The hash was computed once at store insert (Record::traceIdHash),
    // so the sort never re-hashes a record per comparison.
    if (config_.normalSampleSize > 0 && !normals.empty()) {
        std::sort(normals.begin(), normals.end(),
                  [](const storage::Record *a, const storage::Record *b) {
                      if (a->traceIdHash != b->traceIdHash)
                          return a->traceIdHash < b->traceIdHash;
                      return a->traceId() < b->traceId();
                  });
        size_t k = std::min(config_.normalSampleSize, normals.size());
        incident->normalSample.reserve(k);
        for (size_t i = 0; i < k; ++i)
            incident->normalSample.push_back(normals[i]->trace());
    }

    if (!incident->anomalousTraces.empty()) {
        const trace::Span *first = rootSpan(incident->anomalousTraces[0]);
        int64_t earliest = first ? first->startUs : 0;
        for (const trace::Trace &t : incident->anomalousTraces) {
            const trace::Span *r = rootSpan(t);
            if (r != nullptr)
                earliest = std::min(earliest, r->startUs);
        }
        incident->detectionLatencyUs = incident->openedAtUs - earliest;
    }

    // Per-endpoint anomaly signals for the pre-pruning stage, straight
    // from the detector's already-maintained window sketches (only
    // consulted when the pipeline's prune mode is on).
    core::PruneSignals signals;
    for (const std::string &e : incident->endpoints) {
        WindowStats ws = detector_.windowStats(e, watermark_us);
        core::EndpointSignal sig;
        sig.anomalousFraction =
            ws.count > 0 ? static_cast<double>(ws.anomalous) /
                               static_cast<double>(ws.count)
                         : 0.0;
        sig.errors = ws.errors;
        sig.p50Us = ws.p50Us;
        sig.p99Us = ws.p99Us;
        signals[e] = sig;
    }

    auto t0 = std::chrono::steady_clock::now();
    incident->rca = pipeline_.analyze(
        incident->anomalousTraces, incident->slos, &signals,
        config_.incrementalCache ? &cache_ : nullptr);
    auto t1 = std::chrono::steady_clock::now();
    incident->rcaMillis =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    incident->rankedRootCauses = core::aggregateRootCauses(incident->rca);
    incident->state = Incident::State::Analyzed;
    static obs::Counter &analyzed = obs::counter(
        "sleuth_service_incidents_total", "Incident lifecycle events",
        {{"event", "analyzed"}});
    analyzed.add();
    static obs::Histogram &rcaMs = obs::histogram(
        "sleuth_service_incident_rca_ms",
        "Incident-scoped RCA wall-clock milliseconds");
    rcaMs.record(incident->rcaMillis);
}

RecoveryInfo
OnlineService::enableDurability(const durable::DurableConfig &cfg,
                                const RecoverOptions &opts)
{
    SLEUTH_ASSERT(durable_log_ == nullptr,
                  "durability is already enabled");
    SLEUTH_ASSERT(traces_stored_ == 0 && store_.size() == 0 &&
                      incidents_.empty(),
                  "enable durability on a fresh service, before "
                  "any ingest");

    auto log = std::make_unique<durable::DurableLog>(cfg);
    durable::RecoveredLog recovered = log->recover();

    RecoveryInfo info;
    auto t0 = std::chrono::steady_clock::now();
    DurableServingState state =
        replayRecoveredLog(recovered, config_.detector, opts, &info);
    auto t1 = std::chrono::steady_clock::now();
    static obs::Histogram &recoveryMs = obs::histogram(
        "sleuth_recovery_ms",
        "Durable recovery wall-clock milliseconds (scan + replay)");
    recoveryMs.record(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (!info.ok)
        return info;

    // Install the recovered state wholesale: the replayed store owns
    // its own interner and the detector its rebuilt rings. Eviction
    // tracking goes on BEFORE the retention policy is re-applied so a
    // config shrink's evictions land in the first commit group.
    store_ = std::move(state.store);
    store_.trackEvictions(true);
    store_.setRetention(config_.retention);
    detector_ = std::move(state.detector);
    incidents_ = std::move(state.incidents);
    watermark_ = state.watermarkUs;
    traces_stored_ = state.tracesStored;
    last_record_id_ = state.lastRecordId;
    interner_logged_ = store_.interner()->size();

    // Late-span semantics must survive the restart: a committed poll
    // at nowUs left every assembler's watermark at nowUs - latenessUs,
    // which is exactly the watermark the marker recorded. Seed the
    // fresh assemblers' clocks from it so a span the crashed process
    // would have rejected as late (at-least-once upstreams redeliver
    // the tail, stragglers included) is rejected identically here.
    if (watermark_ != std::numeric_limits<int64_t>::min())
        for (auto &shard : shards_)
            shard->assembler.drain(watermark_ +
                                   config_.assembler.latenessUs);

    std::string err;
    if (!log->openForAppend(recovered,
                            encodeEpochPayload(config_.detector),
                            &err)) {
        info.ok = false;
        info.error = "open for append failed: " + err;
        return info;
    }
    durable_log_ = std::move(log);
    return info;
}

bool
OnlineService::snapshotNow(std::string *err)
{
    SLEUTH_ASSERT(durable_log_ != nullptr,
                  "snapshotNow requires durability to be enabled");
    std::string payload = encodeSnapshotPayload(
        store_, config_.detector, detector_, incidents_, watermark_,
        traces_stored_, last_record_id_);
    std::string e;
    if (!durable_log_->rotateWithSnapshot(
            payload, encodeEpochPayload(config_.detector), &e)) {
        util::warn("snapshot rotation failed: ", e);
        if (err != nullptr)
            *err = std::move(e);
        return false;
    }
    polls_since_snapshot_ = 0;
    return true;
}

uint64_t
OnlineService::servingFingerprint() const
{
    return servingStateFingerprint(store_, detector_, incidents_,
                                   watermark_, traces_stored_,
                                   last_record_id_);
}

void
OnlineService::commitPoll(const std::vector<size_t> &changed)
{
    // One commit group, in replay order: vocabulary first (the span
    // batch's raw u32 ids reference it), then the batch, the eviction
    // summary, incident updates, and the sealing marker. The group
    // fsync (policy=group) lands on the marker via commit().
    const auto &interner = store_.interner();
    size_t interned = interner->size();
    if (interned > interner_logged_) {
        durable_log_->append(
            durable::RecordKind::InternerDelta,
            encodeInternerDeltaPayload(
                static_cast<uint32_t>(interner_logged_),
                interner->namesFrom(interner_logged_)));
        interner_logged_ = interned;
    }
    if (poll_batch_count_ > 0) {
        durable_log_->append(durable::RecordKind::SpanBatch,
                             poll_batch_.take());
        poll_batch_count_ = 0;
    }
    std::vector<size_t> evicted = store_.takeRecentEvictions();
    if (!evicted.empty())
        durable_log_->append(durable::RecordKind::Eviction,
                             encodeEvictionPayload(evicted));
    for (size_t index : changed)
        durable_log_->append(
            durable::RecordKind::IncidentUpdate,
            encodeIncidentUpdatePayload(index, incidents_[index]));

    PollMarkerPayload marker;
    marker.watermarkUs = watermark_;
    marker.lastRecordId = last_record_id_;
    marker.tracesStored = traces_stored_;
    marker.storeRecords = store_.size();
    marker.storeSpans = store_.totalSpans();
    marker.internerSize = interner->size();
    marker.advanceWatermarks = std::move(pending_advances_);
    pending_advances_.clear();
    durable_log_->append(durable::RecordKind::PollMarker,
                         encodePollMarkerPayload(marker));
    durable_log_->commit();

    ++polls_since_snapshot_;
    uint64_t every = durable_log_->config().snapshotEveryPolls;
    if (every > 0 && polls_since_snapshot_ >= every)
        snapshotNow();
}

size_t
OnlineService::backlogSpans() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        // Ring occupancy counts too: an enqueued span is buffered
        // until the next poll drains it (exact under shard.mu when
        // producers are quiescent — the barrier points callers use).
        total += shard->assembler.pendingSpans() +
                 shard->ring.sizeApprox();
    }
    return total;
}

OnlineStats
OnlineService::stats() const
{
    OnlineStats s;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        s.spansIngested +=
            shard->spansOffered.load(std::memory_order_relaxed);
        s.assembly.merge(shard->assembler.stats());
        s.assembly.merge(shard->ringStats);
        // Ring-full drops not yet folded by a poll.
        size_t ring_full =
            shard->ringFullDrops.load(std::memory_order_relaxed);
        if (ring_full > shard->ringFullFlushed) {
            size_t unflushed = ring_full - shard->ringFullFlushed;
            s.assembly.spansRejected += unflushed;
            s.assembly.droppedRingFull += unflushed;
        }
    }
    s.tracesStored = traces_stored_;
    for (const Incident &i : incidents_) {
        ++s.incidentsOpened;
        if (i.state != Incident::State::Open)
            ++s.incidentsAnalyzed;
        if (i.state == Incident::State::Resolved)
            ++s.incidentsResolved;
    }
    return s;
}

util::Json
OnlineService::statsJson() const
{
    OnlineStats s = stats();
    util::Json doc = util::Json::object();
    doc.set("spansIngested", s.spansIngested);
    doc.set("spansAccepted", s.assembly.spansAccepted);
    doc.set("spansRejected", s.assembly.spansRejected);
    doc.set("tracesAccepted", s.assembly.tracesAccepted);
    doc.set("tracesRejected", s.assembly.tracesRejected);
    doc.set("tracesStored", s.tracesStored);
    util::Json drops = util::Json::object();
    drops.set("orphan", s.assembly.droppedOrphan);
    drops.set("duplicate", s.assembly.droppedDuplicate);
    drops.set("lateAfterEviction", s.assembly.droppedLate);
    drops.set("malformed", s.assembly.droppedMalformed);
    drops.set("backpressure", s.assembly.droppedBackpressure);
    drops.set("ringFull", s.assembly.droppedRingFull);
    drops.set("shed", s.assembly.droppedShed);
    doc.set("drops", std::move(drops));
    doc.set("shedPolicy", std::string(toString(config_.shedPolicy)));
    doc.set("backlogSpans", backlogSpans());
    doc.set("watermarkUs", watermark_);
    doc.set("storedRecords", store_.size());
    doc.set("storedSpans", store_.totalSpans());
    doc.set("evictedRecords", store_.evictions().records);
    doc.set("evictedSpans", store_.evictions().spans);
    doc.set("incidentsOpened", s.incidentsOpened);
    doc.set("incidentsAnalyzed", s.incidentsAnalyzed);
    doc.set("incidentsResolved", s.incidentsResolved);
    if (config_.incrementalCache) {
        core::PipelineCache::Stats cs = cache_.stats();
        util::Json cache = util::Json::object();
        cache.set("entries", cache_.size());
        cache.set("pairs", cache_.pairCount());
        cache.set("encodingHits", cs.encodingHits);
        cache.set("encodingMisses", cs.encodingMisses);
        cache.set("distanceHits", cs.distanceHits);
        cache.set("distanceMisses", cs.distanceMisses);
        cache.set("verdictHits", cs.verdictHits);
        cache.set("verdictMisses", cs.verdictMisses);
        cache.set("batchHits", cs.batchHits);
        cache.set("invalidations", cs.invalidations);
        cache.set("evictions", cs.evictions);
        doc.set("incrementalCache", std::move(cache));
    }
    return doc;
}

} // namespace sleuth::online
