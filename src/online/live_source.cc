#include "live_source.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "util/logging.h"
#include "util/rng.h"

namespace sleuth::online {

std::map<std::string, EndpointProfile>
endpointProfiles(const synth::AppConfig &app)
{
    std::map<std::string, EndpointProfile> out;
    for (size_t i = 0; i < app.flows.size(); ++i) {
        const synth::FlowConfig &flow = app.flows[i];
        const synth::CallNode &root =
            flow.nodes[static_cast<size_t>(flow.root)];
        const synth::RpcConfig &rpc =
            app.rpcs[static_cast<size_t>(root.rpcId)];
        const synth::ServiceConfig &svc =
            app.services[static_cast<size_t>(rpc.serviceId)];
        EndpointProfile prof;
        prof.sloUs = flow.sloUs;
        prof.flowIndex = static_cast<int>(i);
        // Several flows may enter through the same root rpc; flow
        // identity is not observable from the span stream, so the
        // endpoint is held to the most permissive of the sharing flows'
        // SLOs (a tighter one would flag the slower flow's healthy
        // traffic as a permanent storm).
        auto [it, inserted] =
            out.try_emplace(svc.name + "/" + rpc.name, prof);
        if (!inserted && prof.sloUs > it->second.sloUs)
            it->second = prof;
    }
    return out;
}

namespace {

struct Delivery
{
    int64_t atUs = 0;
    SpanEvent event;
};

void
ingestRange(OnlineService *service, std::vector<Delivery> &all,
            size_t begin, size_t end, size_t stride)
{
    // Each delivery is consumed exactly once (strides partition the
    // range), so the event moves into the ingest ring — the producer
    // path never copies span strings.
    for (size_t i = begin; i < end; i += stride)
        service->ingest(std::move(all[i].event));
}

const trace::Span *
rootSpan(const trace::Trace &t)
{
    for (const trace::Span &s : t.spans)
        if (s.parentSpanId.empty())
            return &s;
    return nullptr;
}

} // namespace

LiveRunResult
runLiveLoad(const synth::AppConfig &app, const sim::ClusterModel &cluster,
            const sim::SimParams &params, const LiveSourceConfig &config,
            OnlineService *service)
{
    SLEUTH_ASSERT(config.arrivalRatePerSec > 0.0,
                  "arrival rate must be positive");
    LiveRunResult result;
    result.requests = config.requests;

    sim::Simulator simulator(app, cluster, params);
    util::Rng rng(config.seed);
    util::Rng delivery_rng = rng.fork(0xde11);

    // --- Simulate requests onto an arrival timeline. ---
    std::vector<Delivery> deliveries;
    const chaos::FaultPlan *active = nullptr;
    double clock = 0.0;
    double rate_per_us = config.arrivalRatePerSec / 1e6;
    for (size_t i = 0; i < config.requests; ++i) {
        clock += rng.exponential(rate_per_us);
        int64_t arrival = static_cast<int64_t>(std::llround(clock));
        const chaos::FaultPlan &plan =
            config.schedule.activeAt(arrival);
        if (&plan != active) {
            simulator.setFaultPlan(plan);
            active = &plan;
        }
        sim::SimResult res = simulator.simulateOne();
        int64_t slo =
            app.flows[static_cast<size_t>(res.flowIndex)].sloUs;
        if (res.violatesSlo(slo))
            ++result.anomalousSimulated;
        for (trace::Span &span : res.trace.spans) {
            span.startUs += arrival;
            span.endUs += arrival;
            result.lastEventUs =
                std::max(result.lastEventUs, span.endUs);
            // A span is reported when it finishes, plus network jitter.
            int64_t jit = config.jitterUs > 0
                              ? delivery_rng.uniformInt(0, config.jitterUs)
                              : 0;
            Delivery d;
            d.atUs = span.endUs + jit;
            d.event.traceId = res.trace.traceId;
            d.event.span = span;
            deliveries.push_back(d);
            if (config.duplicateProb > 0.0 &&
                delivery_rng.bernoulli(config.duplicateProb)) {
                Delivery dup = deliveries.back();
                dup.atUs += config.jitterUs > 0
                                ? delivery_rng.uniformInt(0, config.jitterUs)
                                : 0;
                deliveries.push_back(std::move(dup));
            }
        }
    }
    // Deterministic delivery order; jitter shuffles spans across trace
    // and parent/child boundaries, stable sort keeps duplicates stable.
    std::stable_sort(deliveries.begin(), deliveries.end(),
                     [](const Delivery &a, const Delivery &b) {
                         if (a.atUs != b.atUs)
                             return a.atUs < b.atUs;
                         if (a.event.traceId != b.event.traceId)
                             return a.event.traceId < b.event.traceId;
                         return a.event.span.spanId < b.event.span.spanId;
                     });
    result.spansDelivered = deliveries.size();

    // --- Deliver in poll-interval batches. ---
    auto wall0 = std::chrono::steady_clock::now();
    int64_t next_poll = config.pollIntervalUs;
    size_t cursor = 0;
    size_t threads = std::max<size_t>(1, config.ingestThreads);
    while (cursor < deliveries.size()) {
        size_t batch_end = cursor;
        while (batch_end < deliveries.size() &&
               deliveries[batch_end].atUs < next_poll)
            ++batch_end;
        if (batch_end > cursor) {
            if (threads == 1) {
                ingestRange(service, deliveries, cursor, batch_end, 1);
            } else {
                std::vector<std::thread> workers;
                workers.reserve(threads);
                for (size_t t = 0; t < threads; ++t)
                    workers.emplace_back(ingestRange, service,
                                         std::ref(deliveries),
                                         cursor + t, batch_end, threads);
                for (std::thread &w : workers)
                    w.join();
            }
            cursor = batch_end;
        }
        service->poll(next_poll);
        if (config.onPoll)
            config.onPoll(next_poll);
        next_poll += config.pollIntervalUs;
    }
    // Drain: advance far enough that every quiet horizon passes.
    int64_t drain_us = result.lastEventUs + config.jitterUs +
                       config.pollIntervalUs;
    service->drainAll(drain_us);
    if (config.onPoll)
        config.onPoll(drain_us);
    auto wall1 = std::chrono::steady_clock::now();
    result.ingestWallMillis =
        std::chrono::duration<double, std::milli>(wall1 - wall0).count();
    if (result.ingestWallMillis > 0.0)
        result.spansPerSec = static_cast<double>(result.spansDelivered) /
                             (result.ingestWallMillis / 1000.0);

    // --- Detection latency: event-time storm onset -> the detecting
    // poll's watermark. The onset is the earliest anomalous root span
    // START at/after the active fault phase began — a continuous
    // event-time quantity — not the phase start itself: measuring from
    // the configured phase boundary quantized every latency to
    // (k * pollInterval - lateness - phaseStart), which collapsed p50
    // and p99 onto the poll interval and hid sub-poll resolution. ---
    for (const Incident &incident : service->incidents()) {
        if (incident.state == Incident::State::Open)
            continue;
        int64_t phase_start = INT64_MIN;
        for (const chaos::FaultPhase &phase : config.schedule.phases) {
            if (phase.startUs > incident.openedAtUs)
                break;
            if (!phase.plan.empty())
                phase_start = phase.startUs;
        }
        if (phase_start == INT64_MIN)
            continue;
        int64_t onset = INT64_MAX;
        for (const trace::Trace &t : incident.anomalousTraces) {
            const trace::Span *root = rootSpan(t);
            if (root == nullptr)
                continue;
            // Stragglers that were already anomalous before the fault
            // phase (healthy-tail SLO misses) are not storm onset.
            if (root->startUs >= phase_start)
                onset = std::min(onset, root->startUs);
        }
        if (onset == INT64_MAX)
            onset = phase_start;
        result.detectionLatenciesUs.push_back(incident.openedAtUs -
                                              onset);
    }
    return result;
}

} // namespace sleuth::online
