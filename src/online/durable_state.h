#pragma once

/**
 * @file
 * Durable serving state: what the online layer persists, how each WAL
 * record kind is encoded, and the replay engine that rebuilds exact
 * serving state from a data directory (DESIGN.md §3.15).
 *
 * The unit of durability is the poll. During a poll the service stages
 * one commit group: an InternerDelta (vocabulary strings interned
 * since the last commit, in id order), one SpanBatch (every record
 * admitted this poll, captured at insert time so a record evicted
 * later in the same poll still replays), one Eviction summary (the
 * ids retention evicted this poll, in eviction order), one
 * IncidentUpdate per changed incident (the full incident, verbatim),
 * and finally a PollMarker sealing the group with the watermark, the
 * record high-water mark, and cheap state-shape sanity counters. The
 * group fsync (fsync-policy=group) lands on the marker.
 *
 * Replay is poll-atomic and model-free. Frames are buffered until a
 * PollMarker arrives, then applied as one transaction: deltas are
 * re-interned (ids must come out identical — that is what keeps the
 * raw u32 column encodings valid), span batches are restored under
 * their original ids with NO retention enforcement, logged evictions
 * are re-applied (replay honors maxSpans/maxRecords identically to
 * the live run because it replays the live run's decisions, not the
 * policy), incidents are restored verbatim (the RCA is never re-run,
 * so no model needs to be loaded), and the detector re-observes each
 * restored trace — every Observation field is derivable from the
 * stored record. A torn tail therefore costs at most the last
 * uncommitted poll; recovery always lands exactly on a committed poll
 * boundary. The volatile ingest front (rings, assemblers) is not
 * persisted: upstream delivery is at-least-once and spans in flight at
 * the crash are redelivered or counted as losses by the source.
 */

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "durable/durable_log.h"
#include "online/detector.h"
#include "online/incident.h"
#include "storage/trace_store.h"
#include "util/binary.h"

namespace sleuth::online {

/** Replay knobs (test hooks; defaults are the real protocol). */
struct RecoverOptions
{
    /**
     * Skip applying Eviction records (campaign expect-fail mutation
     * `skip-eviction-replay`): replayed retention then diverges from
     * the live run and the crash-recovery invariant must catch it.
     */
    bool skipEvictionReplay = false;
};

/** What a recovery did (for operators, tests, and the campaign). */
struct RecoveryInfo
{
    /** A snapshot or at least one WAL frame was found. */
    bool haveData = false;
    /** State was seeded from a snapshot file. */
    bool usedSnapshot = false;
    /** Index of the snapshot used (when usedSnapshot). */
    uint64_t snapshotIndex = 0;
    /** WAL frames applied (committed polls only). */
    uint64_t framesReplayed = 0;
    /** Committed polls applied. */
    uint64_t pollsReplayed = 0;
    /** Trailing frames discarded for lack of a sealing PollMarker. */
    uint64_t discardedTailFrames = 0;
    /** Segments whose tail was torn/corrupt and truncated. */
    uint64_t tornSegments = 0;
    /** Corrupt snapshots passed over. */
    uint64_t snapshotsSkipped = 0;
    /** False when replay stopped on an inconsistency (error says). */
    bool ok = true;
    std::string error;
};

/** The exact state the durable layer checkpoints and rebuilds. */
struct DurableServingState
{
    storage::TraceStore store;
    /** Detection config the log was written under (epoch/snapshot). */
    DetectorConfig detectorConfig;
    StormDetector detector{DetectorConfig{}};
    std::vector<Incident> incidents;
    int64_t watermarkUs = std::numeric_limits<int64_t>::min();
    size_t tracesStored = 0;
    size_t lastRecordId = 0;
};

/** PollMarker payload: the commit seal plus state-shape sanity. */
struct PollMarkerPayload
{
    int64_t watermarkUs = 0;
    uint64_t lastRecordId = 0;
    uint64_t tracesStored = 0;
    /** Sanity counters checked after applying the poll. */
    uint64_t storeRecords = 0;
    uint64_t storeSpans = 0;
    uint64_t internerSize = 0;
    /**
     * Watermarks the detector advanced at since the last commit, in
     * order. The storm hysteresis makes the flags a function of the
     * whole advance sequence, not just the final watermark — a single
     * commit group can span several advances (drainAll), so replay
     * must re-run each one after restoring the group's records.
     */
    std::vector<int64_t> advanceWatermarks;
};

/** Epoch payload: format version + the detection configuration a
    config-free reader (CLI compact) needs to replay the log. */
std::string encodeEpochPayload(const DetectorConfig &config);
bool decodeEpochPayload(std::string_view payload,
                        DetectorConfig *config);

/** InternerDelta payload: first id + the new strings in id order. */
std::string
encodeInternerDeltaPayload(uint32_t firstId,
                           const std::vector<std::string> &names);

/** Eviction payload: evicted record ids in eviction order. */
std::string encodeEvictionPayload(const std::vector<size_t> &ids);

/** IncidentUpdate payload: incident index + the full incident. */
std::string encodeIncidentUpdatePayload(size_t index,
                                        const Incident &incident);

/** PollMarker payload. */
std::string encodePollMarkerPayload(const PollMarkerPayload &marker);

/** Append one record to a SpanBatch payload under construction (the
    service captures each record at insert time; see file comment). */
void appendSpanBatchRecord(util::BinaryWriter &w,
                           const storage::Record &record);

/** Serialize the full serving state as a snapshot payload (includes
    the store content fingerprint, verified on decode). */
std::string encodeSnapshotPayload(const DurableServingState &state);

/** Component-wise variant for the live service (no state copy). */
std::string
encodeSnapshotPayload(const storage::TraceStore &store,
                      const DetectorConfig &detectorConfig,
                      const StormDetector &detector,
                      const std::vector<Incident> &incidents,
                      int64_t watermarkUs, size_t tracesStored,
                      size_t lastRecordId);

/**
 * Exact fingerprint of the full serving state — store, detector rings,
 * incidents, watermark, counters — via the durable byte image, minus
 * the one wall-clock field (Incident::rcaMillis, excluded so recovered
 * state can compare across processes). The crash-recovery campaign
 * invariant requires a recovered service to fingerprint equal to the
 * uninterrupted run.
 */
uint64_t
servingStateFingerprint(const storage::TraceStore &store,
                        const StormDetector &detector,
                        const std::vector<Incident> &incidents,
                        int64_t watermarkUs, size_t tracesStored,
                        size_t lastRecordId);

/** Inverse of encodeSnapshotPayload(); false + *err on corruption or
    fingerprint mismatch. */
bool decodeSnapshotPayload(std::string_view payload,
                           DurableServingState *state,
                           std::string *err);

/**
 * Rebuild serving state from a scanned log: seed from the snapshot
 * when present, then apply committed polls in order (poll-atomic; the
 * unsealed tail is discarded). `detectorConfig` overrides the logged
 * configuration when provided (the service passes its own; the CLI
 * passes nullopt to run config-free from the epoch records).
 */
DurableServingState
replayRecoveredLog(const durable::RecoveredLog &log,
                   const std::optional<DetectorConfig> &detectorConfig,
                   const RecoverOptions &opts, RecoveryInfo *info);

/** One-call recovery for tools: scan `cfg.dir` and replay. */
DurableServingState recoverState(const durable::DurableConfig &cfg,
                                 const RecoverOptions &opts,
                                 RecoveryInfo *info);

} // namespace sleuth::online
