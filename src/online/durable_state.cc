#include "durable_state.h"

#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/strings.h"

namespace sleuth::online {

namespace {

/** Version of every durable payload layout (epoch + snapshot). */
constexpr uint32_t kStateFormatVersion = 1;

void
encodeDetectorConfig(util::BinaryWriter &w, const DetectorConfig &c)
{
    w.i64(c.bucketUs);
    w.u64(c.windowBuckets);
    w.u64(c.minWindowCount);
    w.u64(c.minAnomalous);
    w.f64(c.onsetFraction);
    w.f64(c.clearFraction);
    w.f64(c.sketchAccuracy);
}

bool
decodeDetectorConfig(util::BinaryReader &r, DetectorConfig *c)
{
    c->bucketUs = r.i64();
    c->windowBuckets = r.u64();
    c->minWindowCount = r.u64();
    c->minAnomalous = r.u64();
    c->onsetFraction = r.f64();
    c->clearFraction = r.f64();
    c->sketchAccuracy = r.f64();
    return r.ok() && c->bucketUs > 0 && c->windowBuckets > 0 &&
           c->sketchAccuracy > 0.0 && c->sketchAccuracy < 1.0;
}

bool
sameDetectorConfig(const DetectorConfig &a, const DetectorConfig &b)
{
    return a.bucketUs == b.bucketUs &&
           a.windowBuckets == b.windowBuckets &&
           a.minWindowCount == b.minWindowCount &&
           a.minAnomalous == b.minAnomalous &&
           a.onsetFraction == b.onsetFraction &&
           a.clearFraction == b.clearFraction &&
           a.sketchAccuracy == b.sketchAccuracy;
}

bool
fail(RecoveryInfo *info, std::string msg)
{
    info->ok = false;
    info->error = std::move(msg);
    util::warn("durable recovery stopped: ", info->error);
    return false;
}

bool
decodePollMarkerPayload(std::string_view payload, PollMarkerPayload *m)
{
    util::BinaryReader r(payload);
    m->watermarkUs = r.i64();
    m->lastRecordId = r.u64();
    m->tracesStored = r.u64();
    m->storeRecords = r.u64();
    m->storeSpans = r.u64();
    m->internerSize = r.u64();
    uint32_t n = r.u32();
    m->advanceWatermarks.clear();
    m->advanceWatermarks.reserve(n);
    for (uint32_t i = 0; i < n && r.ok(); ++i)
        m->advanceWatermarks.push_back(r.i64());
    return r.ok() && r.remaining() == 0;
}

bool
applyInternerDelta(DurableServingState &state, std::string_view payload,
                   RecoveryInfo *info)
{
    util::BinaryReader r(payload);
    uint32_t firstId = r.u32();
    uint32_t n = r.u32();
    const auto &interner = state.store.interner();
    if (!r.ok() || firstId != interner->size())
        return fail(info, "interner delta out of sequence");
    for (uint32_t i = 0; i < n; ++i) {
        std::string s = r.str();
        if (!r.ok())
            return fail(info, "short interner delta");
        if (interner->intern(s) != firstId + i)
            return fail(info, "interner replay id mismatch");
    }
    if (r.remaining() != 0)
        return fail(info, "trailing bytes in interner delta");
    return true;
}

bool
applySpanBatch(DurableServingState &state, std::string_view payload,
               RecoveryInfo *info)
{
    util::BinaryReader r(payload);
    const auto &interner = state.store.interner();
    while (r.ok() && r.remaining() > 0) {
        size_t id = r.u64();
        int64_t sloUs = r.i64();
        int flowIndex = static_cast<int>(r.i64());
        trace::ColumnarTrace cols;
        if (!cols.decode(r, interner))
            return fail(info, "corrupt span batch record");
        if (state.store.contains(id))
            return fail(info, "span batch restores a live id");
        state.store.restoreRecord(std::move(cols), sloUs, flowIndex,
                                  id);

        // Re-observe exactly as the live absorb did: every Observation
        // field is derivable from the restored record, so the detector
        // rings rebuild without logging a separate observation stream.
        const storage::Record &rec = state.store.at(id);
        int root = rec.columns.rootIndex();
        if (root < 0)
            return fail(info, "restored trace has no root span");
        auto ri = static_cast<size_t>(root);
        const trace::SpanColumns &c = rec.columns.columns();
        Observation obs;
        obs.endpoint = interner->name(c.serviceId(ri)) + "/" +
                       interner->name(c.nameId(ri));
        obs.startUs = c.startUs(ri);
        obs.durationUs = c.durationUs(ri);
        obs.error = c.hasError(ri);
        obs.anomalous = rec.anomalous();
        state.detector.observe(obs);
    }
    return true;
}

bool
applyEviction(DurableServingState &state, std::string_view payload,
              const RecoverOptions &opts, RecoveryInfo *info)
{
    util::BinaryReader r(payload);
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
        size_t id = r.u64();
        if (!r.ok())
            break;
        if (opts.skipEvictionReplay)
            continue;
        if (!state.store.contains(id))
            return fail(info, "eviction replay of an unknown id");
        state.store.evictById(id);
    }
    if (!r.ok() || r.remaining() != 0)
        return fail(info, "corrupt eviction record");
    return true;
}

bool
applyIncidentUpdate(DurableServingState &state,
                    std::string_view payload, RecoveryInfo *info)
{
    util::BinaryReader r(payload);
    size_t index = r.u64();
    Incident incident;
    if (!decodeIncident(r, &incident) || r.remaining() != 0)
        return fail(info, "corrupt incident update");
    if (index == state.incidents.size())
        state.incidents.push_back(std::move(incident));
    else if (index < state.incidents.size())
        state.incidents[index] = std::move(incident);
    else
        return fail(info, "incident update index gap");
    return true;
}

/** Apply one sealed commit group (the poll-atomic replay unit). */
bool
applyPoll(DurableServingState &state,
          const std::vector<const durable::WalFrame *> &frames,
          std::string_view markerPayload, const RecoverOptions &opts,
          RecoveryInfo *info)
{
    for (const durable::WalFrame *f : frames) {
        switch (f->kind) {
          case durable::RecordKind::InternerDelta:
            if (!applyInternerDelta(state, f->payload, info))
                return false;
            break;
          case durable::RecordKind::SpanBatch:
            if (!applySpanBatch(state, f->payload, info))
                return false;
            break;
          case durable::RecordKind::Eviction:
            if (!applyEviction(state, f->payload, opts, info))
                return false;
            break;
          case durable::RecordKind::IncidentUpdate:
            if (!applyIncidentUpdate(state, f->payload, info))
                return false;
            break;
          default:
            return fail(info, "unexpected record kind inside a poll");
        }
    }

    PollMarkerPayload m;
    if (!decodePollMarkerPayload(markerPayload, &m))
        return fail(info, "corrupt poll marker");
    state.watermarkUs = m.watermarkUs;
    state.lastRecordId = m.lastRecordId;
    state.tracesStored = m.tracesStored;
    // Storm flags depend on the whole advance history (hysteresis), so
    // each advance the live run performed in this group is re-run; the
    // transitions it reported are discarded — incident lifecycle
    // replays verbatim from IncidentUpdate records instead.
    for (int64_t wm : m.advanceWatermarks)
        (void)state.detector.advance(wm);

    // Cheap state-shape sanity: a replay that diverged from the live
    // run (e.g. retention applied differently) is caught at the first
    // sealed poll rather than at the final fingerprint comparison.
    if (state.store.size() != m.storeRecords ||
        state.store.totalSpans() != m.storeSpans ||
        state.store.interner()->size() != m.internerSize)
        return fail(info, "poll marker state-shape mismatch");
    return true;
}

} // namespace

std::string
encodeEpochPayload(const DetectorConfig &config)
{
    util::BinaryWriter w;
    w.u32(kStateFormatVersion);
    encodeDetectorConfig(w, config);
    return w.take();
}

bool
decodeEpochPayload(std::string_view payload, DetectorConfig *config)
{
    util::BinaryReader r(payload);
    if (r.u32() != kStateFormatVersion)
        return false;
    return decodeDetectorConfig(r, config) && r.remaining() == 0;
}

std::string
encodeInternerDeltaPayload(uint32_t firstId,
                           const std::vector<std::string> &names)
{
    util::BinaryWriter w;
    w.u32(firstId);
    w.u32(static_cast<uint32_t>(names.size()));
    for (const std::string &s : names)
        w.str(s);
    return w.take();
}

std::string
encodeEvictionPayload(const std::vector<size_t> &ids)
{
    util::BinaryWriter w;
    w.u32(static_cast<uint32_t>(ids.size()));
    for (size_t id : ids)
        w.u64(id);
    return w.take();
}

std::string
encodeIncidentUpdatePayload(size_t index, const Incident &incident)
{
    util::BinaryWriter w;
    w.u64(index);
    encodeIncident(w, incident);
    return w.take();
}

std::string
encodePollMarkerPayload(const PollMarkerPayload &marker)
{
    util::BinaryWriter w;
    w.i64(marker.watermarkUs);
    w.u64(marker.lastRecordId);
    w.u64(marker.tracesStored);
    w.u64(marker.storeRecords);
    w.u64(marker.storeSpans);
    w.u64(marker.internerSize);
    w.u32(static_cast<uint32_t>(marker.advanceWatermarks.size()));
    for (int64_t wm : marker.advanceWatermarks)
        w.i64(wm);
    return w.take();
}

void
appendSpanBatchRecord(util::BinaryWriter &w,
                      const storage::Record &record)
{
    w.u64(record.id);
    w.i64(record.sloUs);
    w.i64(record.flowIndex);
    record.columns.encode(w);
}

std::string
encodeSnapshotPayload(const DurableServingState &state)
{
    return encodeSnapshotPayload(state.store, state.detectorConfig,
                                 state.detector, state.incidents,
                                 state.watermarkUs, state.tracesStored,
                                 state.lastRecordId);
}

std::string
encodeSnapshotPayload(const storage::TraceStore &store,
                      const DetectorConfig &detectorConfig,
                      const StormDetector &detector,
                      const std::vector<Incident> &incidents,
                      int64_t watermarkUs, size_t tracesStored,
                      size_t lastRecordId)
{
    util::BinaryWriter w;
    w.u32(kStateFormatVersion);
    encodeDetectorConfig(w, detectorConfig);
    store.encodeState(w);
    detector.encodeState(w);
    w.u32(static_cast<uint32_t>(incidents.size()));
    for (const Incident &incident : incidents)
        encodeIncident(w, incident);
    w.i64(watermarkUs);
    w.u64(tracesStored);
    w.u64(lastRecordId);
    w.u64(store.contentFingerprint());
    return w.take();
}

uint64_t
servingStateFingerprint(const storage::TraceStore &store,
                        const StormDetector &detector,
                        const std::vector<Incident> &incidents,
                        int64_t watermarkUs, size_t tracesStored,
                        size_t lastRecordId)
{
    util::BinaryWriter w;
    store.encodeState(w);
    detector.encodeState(w);
    w.u32(static_cast<uint32_t>(incidents.size()));
    for (const Incident &incident : incidents) {
        // rcaMillis is wall-clock (how long the RCA took in whichever
        // process ran it); every other incident field is event-time
        // deterministic. A recovered service carries the crashed
        // process's timing verbatim, so the equality fingerprint must
        // exclude it or no recovery could ever match its control run.
        Incident canonical = incident;
        canonical.rcaMillis = 0.0;
        encodeIncident(w, canonical);
    }
    w.i64(watermarkUs);
    w.u64(tracesStored);
    w.u64(lastRecordId);
    return util::fnv1a(w.buffer());
}

bool
decodeSnapshotPayload(std::string_view payload,
                      DurableServingState *state, std::string *err)
{
    util::BinaryReader r(payload);
    if (r.u32() != kStateFormatVersion) {
        *err = "unsupported snapshot format version";
        return false;
    }
    DurableServingState s;
    if (!decodeDetectorConfig(r, &s.detectorConfig)) {
        *err = "corrupt snapshot detector config";
        return false;
    }
    if (!s.store.decodeState(r)) {
        *err = "corrupt snapshot store section";
        return false;
    }
    s.detector = StormDetector(s.detectorConfig);
    if (!s.detector.decodeState(r)) {
        *err = "corrupt snapshot detector section";
        return false;
    }
    uint32_t nIncidents = r.u32();
    s.incidents.resize(nIncidents);
    for (uint32_t i = 0; i < nIncidents && r.ok(); ++i) {
        if (!decodeIncident(r, &s.incidents[i])) {
            *err = "corrupt snapshot incident section";
            return false;
        }
    }
    s.watermarkUs = r.i64();
    s.tracesStored = r.u64();
    s.lastRecordId = r.u64();
    uint64_t fingerprint = r.u64();
    if (!r.ok() || r.remaining() != 0) {
        *err = "short or oversized snapshot payload";
        return false;
    }
    if (s.store.contentFingerprint() != fingerprint) {
        *err = "snapshot store fingerprint mismatch";
        return false;
    }
    *state = std::move(s);
    return true;
}

DurableServingState
replayRecoveredLog(const durable::RecoveredLog &log,
                   const std::optional<DetectorConfig> &detectorConfig,
                   const RecoverOptions &opts, RecoveryInfo *info)
{
    SLEUTH_ASSERT(info != nullptr, "replay needs a RecoveryInfo sink");
    *info = RecoveryInfo{};
    info->tornSegments = log.tornSegments;
    info->snapshotsSkipped = log.snapshotsSkipped;

    DurableServingState state;
    bool haveConfig = false;
    bool warnedConfig = false;
    if (log.hasSnapshot) {
        std::string err;
        if (!decodeSnapshotPayload(log.snapshotPayload, &state, &err)) {
            // The outer CRC already passed, so a semantic decode
            // failure means a version/logic mismatch, not disk rot.
            fail(info, "snapshot decode failed: " + err);
            return state;
        }
        info->usedSnapshot = true;
        info->snapshotIndex = log.snapshotIndex;
        info->haveData = true;
        haveConfig = true;
    } else if (detectorConfig) {
        state.detectorConfig = *detectorConfig;
        state.detector = StormDetector(state.detectorConfig);
        haveConfig = true;
    }

    std::vector<const durable::WalFrame *> pending;
    for (const durable::WalFrame &f : log.frames) {
        info->haveData = true;
        switch (f.kind) {
          case durable::RecordKind::Epoch: {
            DetectorConfig logged;
            if (!decodeEpochPayload(f.payload, &logged)) {
                fail(info, "corrupt epoch record");
                return state;
            }
            if (!haveConfig) {
                state.detectorConfig = logged;
                state.detector = StormDetector(logged);
                haveConfig = true;
            } else if (!warnedConfig &&
                       !sameDetectorConfig(logged,
                                           state.detectorConfig)) {
                // Replay keeps the config it started with; changing
                // detection knobs requires a fresh data directory (or
                // a compact, which re-stamps the epoch).
                util::warn("durable recovery: logged detector config "
                           "differs from the replay config; replaying "
                           "with the latter");
                warnedConfig = true;
            }
            ++info->framesReplayed;
            break;
          }
          case durable::RecordKind::PollMarker: {
            if (!haveConfig) {
                fail(info, "poll marker before any epoch record");
                return state;
            }
            if (!applyPoll(state, pending, f.payload, opts, info))
                return state;
            info->framesReplayed += pending.size() + 1;
            ++info->pollsReplayed;
            pending.clear();
            break;
          }
          default:
            pending.push_back(&f);
        }
    }

    info->discardedTailFrames = pending.size();
    if (!pending.empty()) {
        static obs::Counter &discarded = obs::counter(
            "sleuth_recovery_discarded_frames_total",
            "WAL tail frames discarded for lack of a sealing "
            "poll marker");
        discarded.add(pending.size());
        util::inform("durable recovery: discarded ", pending.size(),
                     " unsealed tail frame(s)");
    }
    static obs::Counter &polls = obs::counter(
        "sleuth_recovery_polls_replayed_total",
        "Committed polls applied during durable recovery");
    polls.add(info->pollsReplayed);
    return state;
}

DurableServingState
recoverState(const durable::DurableConfig &cfg,
             const RecoverOptions &opts, RecoveryInfo *info)
{
    durable::DurableLog log(cfg);
    durable::RecoveredLog recovered = log.recover();
    return replayRecoveredLog(recovered, std::nullopt, opts, info);
}

} // namespace sleuth::online
