#include "sketch.h"

#include <cmath>

#include "util/logging.h"

namespace sleuth::online {

QuantileSketch::QuantileSketch(double relativeAccuracy,
                               size_t maxBuckets)
    : alpha_(relativeAccuracy), max_buckets_(maxBuckets)
{
    SLEUTH_ASSERT(relativeAccuracy > 0.0 && relativeAccuracy < 1.0,
                  "relative accuracy must be in (0, 1)");
    log_gamma_ = std::log((1.0 + alpha_) / (1.0 - alpha_));
}

int
QuantileSketch::bucketIndex(double x) const
{
    return static_cast<int>(std::ceil(std::log(x) / log_gamma_));
}

double
QuantileSketch::bucketValue(int index) const
{
    // Midpoint estimate of (gamma^(i-1), gamma^i]: relative error
    // against any member of the bucket is at most alpha.
    double gamma = (1.0 + alpha_) / (1.0 - alpha_);
    return 2.0 * std::exp(static_cast<double>(index) * log_gamma_) /
           (1.0 + gamma);
}

void
QuantileSketch::add(double x)
{
    ++count_;
    if (!(x > 0.0)) {
        ++zero_count_;
        return;
    }
    ++buckets_[bucketIndex(x)];
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    SLEUTH_ASSERT(alpha_ == other.alpha_,
                  "cannot merge sketches of different accuracy");
    SLEUTH_ASSERT(max_buckets_ == other.max_buckets_,
                  "cannot merge sketches of different bucket budgets");
    count_ += other.count_;
    zero_count_ += other.zero_count_;
    for (const auto &[idx, n] : other.buckets_)
        buckets_[idx] += n;
}

double
QuantileSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the order statistic to report.
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(count_ - 1));
    if (rank < zero_count_)
        return 0.0;
    // Apply the maxBuckets budget as a deterministic view: the lowest
    // buckets beyond the budget report their collapse target's value.
    // Collapsing only at read time keeps the stored buckets a pure
    // function of the observation multiset, so sharded merges stay
    // bitwise identical to sequential adds in any order.
    size_t collapseInto = 0;
    if (max_buckets_ != 0 && buckets_.size() > max_buckets_)
        collapseInto = buckets_.size() - max_buckets_;
    int collapseIndex =
        collapseInto == 0
            ? 0
            : std::next(buckets_.begin(),
                        static_cast<long>(collapseInto))
                  ->first;
    uint64_t cumulative = zero_count_;
    size_t pos = 0;
    for (const auto &[idx, n] : buckets_) {
        cumulative += n;
        if (rank < cumulative)
            return bucketValue(pos < collapseInto ? collapseIndex
                                                  : idx);
        ++pos;
    }
    // Numerically unreachable; report the top bucket.
    return buckets_.empty() ? 0.0
                            : bucketValue(buckets_.rbegin()->first);
}

bool
QuantileSketch::operator==(const QuantileSketch &other) const
{
    return alpha_ == other.alpha_ && count_ == other.count_ &&
           zero_count_ == other.zero_count_ &&
           buckets_ == other.buckets_;
}

void
QuantileSketch::clear()
{
    count_ = 0;
    zero_count_ = 0;
    buckets_.clear();
}

void
QuantileSketch::encode(util::BinaryWriter &w) const
{
    w.f64(alpha_);
    w.u64(max_buckets_);
    w.u64(count_);
    w.u64(zero_count_);
    w.u32(static_cast<uint32_t>(buckets_.size()));
    for (const auto &[idx, n] : buckets_) {
        w.i64(idx);
        w.u64(n);
    }
}

bool
QuantileSketch::decode(util::BinaryReader &r)
{
    double alpha = r.f64();
    uint64_t maxBuckets = r.u64();
    if (!r.ok() || alpha <= 0.0 || alpha >= 1.0)
        return false;
    // The constructor owns the alpha -> gamma derivation.
    *this = QuantileSketch(alpha, static_cast<size_t>(maxBuckets));
    count_ = r.u64();
    zero_count_ = r.u64();
    uint32_t n = r.u32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
        int idx = static_cast<int>(r.i64());
        buckets_[idx] = r.u64();
    }
    return r.ok();
}

} // namespace sleuth::online
