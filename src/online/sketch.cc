#include "sketch.h"

#include <cmath>

#include "util/logging.h"

namespace sleuth::online {

QuantileSketch::QuantileSketch(double relativeAccuracy,
                               size_t maxBuckets)
    : alpha_(relativeAccuracy), max_buckets_(maxBuckets)
{
    SLEUTH_ASSERT(relativeAccuracy > 0.0 && relativeAccuracy < 1.0,
                  "relative accuracy must be in (0, 1)");
    log_gamma_ = std::log((1.0 + alpha_) / (1.0 - alpha_));
}

int
QuantileSketch::bucketIndex(double x) const
{
    return static_cast<int>(std::ceil(std::log(x) / log_gamma_));
}

double
QuantileSketch::bucketValue(int index) const
{
    // Midpoint estimate of (gamma^(i-1), gamma^i]: relative error
    // against any member of the bucket is at most alpha.
    double gamma = (1.0 + alpha_) / (1.0 - alpha_);
    return 2.0 * std::exp(static_cast<double>(index) * log_gamma_) /
           (1.0 + gamma);
}

void
QuantileSketch::add(double x)
{
    ++count_;
    if (!(x > 0.0)) {
        ++zero_count_;
        return;
    }
    ++buckets_[bucketIndex(x)];
    collapseIfNeeded();
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    SLEUTH_ASSERT(alpha_ == other.alpha_,
                  "cannot merge sketches of different accuracy");
    count_ += other.count_;
    zero_count_ += other.zero_count_;
    for (const auto &[idx, n] : other.buckets_)
        buckets_[idx] += n;
    collapseIfNeeded();
}

void
QuantileSketch::collapseIfNeeded()
{
    if (max_buckets_ == 0)
        return;
    // Collapse the lowest bucket into its neighbor: upper quantiles
    // (the ones the detector reads) keep their accuracy bound.
    while (buckets_.size() > max_buckets_) {
        auto lowest = buckets_.begin();
        auto next = std::next(lowest);
        next->second += lowest->second;
        buckets_.erase(lowest);
    }
}

double
QuantileSketch::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the order statistic to report.
    uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(count_ - 1));
    if (rank < zero_count_)
        return 0.0;
    uint64_t cumulative = zero_count_;
    for (const auto &[idx, n] : buckets_) {
        cumulative += n;
        if (rank < cumulative)
            return bucketValue(idx);
    }
    // Numerically unreachable; report the top bucket.
    return buckets_.empty() ? 0.0
                            : bucketValue(buckets_.rbegin()->first);
}

bool
QuantileSketch::operator==(const QuantileSketch &other) const
{
    return alpha_ == other.alpha_ && count_ == other.count_ &&
           zero_count_ == other.zero_count_ &&
           buckets_ == other.buckets_;
}

void
QuantileSketch::clear()
{
    count_ = 0;
    zero_count_ = 0;
    buckets_.clear();
}

} // namespace sleuth::online
