#pragma once

/**
 * @file
 * Mergeable quantile sketch for online latency statistics.
 *
 * A DDSketch-style log-bucketed histogram: values map to geometric
 * buckets of ratio gamma = (1 + alpha) / (1 - alpha), which bounds the
 * relative error of any quantile by alpha. Buckets are sparse counters,
 * so two sketches merge by adding counts — merge(A, B) is bitwise
 * identical to a sketch that observed A's and B's values directly, in
 * any order. That commutativity is what makes the sliding-window storm
 * detector deterministic under sharded multi-threaded ingestion: each
 * window bucket owns a sketch and window quantiles are computed by
 * merging the bucket sketches at evaluation time.
 *
 * The maxBuckets budget collapses the lowest buckets into their
 * neighbor (per the DDSketch paper, this preserves the accuracy of the
 * upper quantiles the detector reads — p50/p99). The collapse is
 * applied as a *view at read time*, never to the stored buckets:
 * eager collapse would make merge order-sensitive once the budget
 * trips (a shard that collapsed early loses resolution a sequential
 * sketch kept, so shard-merge and sequential adds diverge bitwise).
 * Raw storage stays bounded regardless — bucket keys are
 * ceil(ln x / ln gamma), so the live-bucket count can never exceed the
 * log-range of observed values (~520 buckets across 9 decades at the
 * default alpha = 0.02).
 */

#include <cstddef>
#include <cstdint>
#include <map>

#include "util/binary.h"

namespace sleuth::online {

/** A mergeable log-bucketed quantile sketch over non-negative values. */
class QuantileSketch
{
  public:
    /**
     * @param relativeAccuracy quantile relative-error bound alpha
     * @param maxBuckets read-time collapse budget (0 = unbounded)
     */
    explicit QuantileSketch(double relativeAccuracy = 0.02,
                            size_t maxBuckets = 1024);

    /** Fold one observation (negative values clamp to zero). */
    void add(double x);

    /** Fold another sketch (must share accuracy and budget). */
    void merge(const QuantileSketch &other);

    /** Observations so far. */
    uint64_t count() const { return count_; }

    /**
     * Value at quantile q in [0, 1] (0 when empty). The returned value
     * is within a factor (1 + alpha) of an exact order statistic.
     */
    double quantile(double q) const;

    /** Configured relative accuracy. */
    double relativeAccuracy() const { return alpha_; }

    /** Raw (uncollapsed) live bucket count (memory accounting). */
    size_t buckets() const { return buckets_.size(); }

    /** Exact equality (bucket maps and counts). */
    bool operator==(const QuantileSketch &other) const;

    /** Reset to empty. */
    void clear();

    /** Serialize parameters + buckets (durable store). */
    void encode(util::BinaryWriter &w) const;

    /** Inverse of encode(); false on short/invalid input. */
    bool decode(util::BinaryReader &r);

  private:
    int bucketIndex(double x) const;
    double bucketValue(int index) const;

    double alpha_;
    double log_gamma_;
    size_t max_buckets_;
    uint64_t count_ = 0;
    uint64_t zero_count_ = 0;
    /** bucket index -> observation count; keys ordered ascending. */
    std::map<int, uint64_t> buckets_;
};

} // namespace sleuth::online
