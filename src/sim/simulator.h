#pragma once

/**
 * @file
 * Discrete-event trace simulator.
 *
 * This is the substitute for the paper's 100-node Kubernetes deployment
 * of real gRPC microservices: it executes an AppConfig's operation
 * flows request by request — sampling log-normal workload kernels,
 * honoring per-parent execution stages (sequential / parallel / async
 * child calls), adding network hops, propagating errors, and enforcing
 * client timeouts — and emits OpenTelemetry-style traces with
 * client/server (and producer/consumer) span pairs stamped with the
 * container/pod/node that executed them. Chaos faults perturb matching
 * kernels and hops; every materially affected instance is recorded as
 * the trace's root-cause ground truth.
 */

#include <functional>
#include <unordered_map>
#include <set>
#include <string>
#include <vector>

#include "chaos/fault.h"
#include "sim/cluster_model.h"
#include "synth/config.h"
#include "trace/trace.h"
#include "util/rng.h"

namespace sleuth::sim {

/** One simulated request: its trace plus root-cause ground truth. */
struct SimResult
{
    trace::Trace trace;
    /** Which operation flow produced the trace. */
    int flowIndex = 0;
    /** Services whose instances materially perturbed this trace. */
    std::set<std::string> rootCauseServices;
    /** Containers that materially perturbed this trace. */
    std::set<std::string> rootCauseContainers;
    /** Pods that materially perturbed this trace. */
    std::set<std::string> rootCausePods;
    /** Nodes that materially perturbed this trace. */
    std::set<std::string> rootCauseNodes;

    /** True when any fault materially touched the trace. */
    bool faultTouched() const { return !rootCauseServices.empty(); }

    /** True when the trace violates its flow's latency SLO or errors. */
    bool violatesSlo(int64_t slo_us) const;
};

/** Simulator knobs. */
struct SimParams
{
    /** Randomness seed. */
    uint64_t seed = 1;
    /** Probability a parent handles (absorbs) a child's error. */
    double errorHandleProb = 0.15;
    /** Dispatch cost of an async publish, ln(us). */
    double asyncDispatchLogMu = 3.0;
    /**
     * Ground-truth materiality: a fault becomes a root cause of a
     * trace when the latency it added on synchronous paths is at least
     * this fraction of the end-to-end duration (error-injecting faults
     * count whenever the root span errors).
     */
    double materialityFraction = 0.1;
};

/** Executes requests against an application + deployment (+ faults). */
class Simulator
{
  public:
    /**
     * @param app application config (kept by reference; must outlive)
     * @param cluster deployment model (kept by reference; must outlive)
     * @param params simulator knobs
     * @param plan active faults (copied into an index)
     */
    Simulator(const synth::AppConfig &app, const ClusterModel &cluster,
              const SimParams &params,
              const chaos::FaultPlan &plan = {});

    /**
     * Replace the active fault plan mid-run (rebuilds the index). The
     * RNG stream and trace-id counter continue, so a chaos schedule
     * can phase faults in and out over one simulator instance.
     */
    void setFaultPlan(const chaos::FaultPlan &plan);

    /** Simulate one request of a flow chosen by workload-mix weight. */
    SimResult simulateOne();

    /** Simulate one request of a specific flow. */
    SimResult simulateFlow(int flow_index);

    /** Simulate n mixed requests. */
    std::vector<SimResult> simulateMany(size_t n);

    /** Simulate n mixed requests, streaming results to a consumer. */
    void simulateStream(size_t n,
                        const std::function<void(SimResult &&)> &sink);

    /**
     * Set each flow's SLO to the given percentile of fault-free latency
     * over `samples_per_flow` simulated requests (paper: anomalous =
     * SLO-violating). Writes into the AppConfig's flows.
     */
    static void calibrateSlos(synth::AppConfig &app,
                              const ClusterModel &cluster,
                              size_t samples_per_flow, double pct = 99.0,
                              uint64_t seed = 0xca11b0);

  private:
    struct CallOutcome
    {
        int64_t clientEndUs = 0;
        bool clientError = false;
    };

    /** Per-instance fault effects accumulated during one request. */
    struct CauseAccumulator
    {
        struct Effect
        {
            const chaos::Instance *instance = nullptr;
            double addedUs = 0.0;       ///< extra latency on sync paths
            bool errorInjected = false;  ///< injected error on sync path
        };
        std::unordered_map<std::string, Effect> byContainer;

        void addLatency(const chaos::Instance &inst, double added_us);
        void addError(const chaos::Instance &inst);
    };

    CallOutcome simulateCall(const synth::FlowConfig &flow, int node_id,
                             int64_t client_start,
                             const std::string &parent_span_id,
                             const chaos::Instance *caller,
                             bool async_invocation, bool sync_path,
                             SimResult *out, CauseAccumulator *causes);

    double kernelMultiplier(const std::vector<const chaos::FaultSpec *>
                                &faults,
                            synth::Resource resource) const;

    int64_t sampleKernel(const synth::KernelConfig &k);

    const synth::AppConfig &app_;
    const ClusterModel &cluster_;
    SimParams params_;
    chaos::FaultIndex faults_;
    util::Rng rng_;
    uint64_t next_trace_ = 0;
    std::vector<double> flow_weights_;
};

} // namespace sleuth::sim
