#include "simulator.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/stats.h"

namespace sleuth::sim {

bool
SimResult::violatesSlo(int64_t slo_us) const
{
    if (slo_us > 0 && trace.rootDurationUs() > slo_us)
        return true;
    // An error on the root span is always an SLO violation.
    for (const trace::Span &s : trace.spans)
        if (s.parentSpanId.empty())
            return s.hasError();
    return false;
}

void
Simulator::CauseAccumulator::addLatency(const chaos::Instance &inst,
                                        double added_us)
{
    Effect &e = byContainer[inst.container];
    e.instance = &inst;
    e.addedUs += added_us;
}

void
Simulator::CauseAccumulator::addError(const chaos::Instance &inst)
{
    Effect &e = byContainer[inst.container];
    e.instance = &inst;
    e.errorInjected = true;
}

Simulator::Simulator(const synth::AppConfig &app,
                     const ClusterModel &cluster, const SimParams &params,
                     const chaos::FaultPlan &plan)
    : app_(app), cluster_(cluster), params_(params), faults_(plan),
      rng_(params.seed ^ 0x5137u)
{
    app_.validate();
    for (const synth::FlowConfig &f : app_.flows)
        flow_weights_.push_back(f.weight);
}

void
Simulator::setFaultPlan(const chaos::FaultPlan &plan)
{
    faults_ = chaos::FaultIndex(plan);
}

double
Simulator::kernelMultiplier(
    const std::vector<const chaos::FaultSpec *> &faults,
    synth::Resource resource) const
{
    double mult = 1.0;
    for (const chaos::FaultSpec *f : faults) {
        bool matches = false;
        switch (f->type) {
          case chaos::FaultType::CpuStress:
            matches = resource == synth::Resource::Cpu;
            break;
          case chaos::FaultType::MemoryStress:
            matches = resource == synth::Resource::Memory;
            break;
          case chaos::FaultType::DiskStress:
            matches = resource == synth::Resource::Disk;
            break;
          case chaos::FaultType::NetworkDelay:
            matches = resource == synth::Resource::Network;
            break;
          case chaos::FaultType::NetworkError:
            matches = false;
            break;
        }
        if (matches)
            mult *= f->latencyMultiplier;
    }
    return mult;
}

int64_t
Simulator::sampleKernel(const synth::KernelConfig &k)
{
    return static_cast<int64_t>(
        std::ceil(rng_.logNormal(k.logMu, k.logSigma)));
}

Simulator::CallOutcome
Simulator::simulateCall(const synth::FlowConfig &flow, int node_id,
                        int64_t client_start,
                        const std::string &parent_span_id,
                        const chaos::Instance *caller,
                        bool async_invocation, bool sync_path,
                        SimResult *out, CauseAccumulator *causes)
{
    const synth::CallNode &node =
        flow.nodes[static_cast<size_t>(node_id)];
    const synth::RpcConfig &rpc =
        app_.rpcs[static_cast<size_t>(node.rpcId)];
    const synth::ServiceConfig &svc =
        app_.services[static_cast<size_t>(rpc.serviceId)];

    // Client-side load balancing: pick a pod replica.
    const auto &replicas = cluster_.instancesOf(rpc.serviceId);
    const chaos::Instance &inst = replicas[static_cast<size_t>(
        rng_.uniformInt(0, static_cast<int64_t>(replicas.size()) - 1))];
    auto server_faults = faults_.faultsOn(inst);

    std::string span_prefix =
        "s" + std::to_string(out->trace.spans.size());

    // --- Client span (absent for the flow root). ---
    bool has_client = caller != nullptr;
    std::string client_span_id;
    size_t client_span_slot = 0;
    std::vector<const chaos::FaultSpec *> caller_faults;
    if (has_client) {
        caller_faults = faults_.faultsOn(*caller);
        client_span_id = span_prefix + "c";
        trace::Span cs;
        cs.spanId = client_span_id;
        cs.parentSpanId = parent_span_id;
        cs.service =
            app_.services[static_cast<size_t>(caller->serviceId)].name;
        cs.name = rpc.name;
        cs.kind = async_invocation ? trace::SpanKind::Producer
                                   : trace::SpanKind::Client;
        cs.startUs = client_start;
        cs.container = caller->container;
        cs.pod = caller->pod;
        cs.node = caller->node;
        out->trace.spans.push_back(std::move(cs));
        client_span_slot = out->trace.spans.size() - 1;
    }

    // --- Network hop to the server. ---
    double server_net =
        kernelMultiplier(server_faults, synth::Resource::Network);
    double caller_net = has_client
        ? kernelMultiplier(caller_faults, synth::Resource::Network)
        : 1.0;
    double net_mult = server_net * caller_net;
    int64_t net_base = sampleKernel(app_.network);
    int64_t net_out = static_cast<int64_t>(
        static_cast<double>(net_base) * net_mult);
    if (sync_path && net_mult > 1.0) {
        double added = static_cast<double>(net_out - net_base);
        // Attribute the slowdown to whichever endpoint is faulted.
        if (server_net > 1.0)
            causes->addLatency(inst, added);
        if (has_client && caller_net > 1.0)
            causes->addLatency(*caller, added);
    }
    int64_t server_start = client_start + (has_client ? net_out : 0);

    // --- Server span: start kernel, staged children, end kernel. ---
    double start_mult = kernelMultiplier(server_faults,
                                         rpc.startKernel.resource);
    int64_t start_base = sampleKernel(rpc.startKernel);
    int64_t start_kernel = static_cast<int64_t>(
        static_cast<double>(start_base) * start_mult);
    if (sync_path && start_mult > 1.0)
        causes->addLatency(
            inst, static_cast<double>(start_kernel - start_base));
    int64_t t = server_start + start_kernel;

    std::string server_span_id = span_prefix + "s";
    // Reserve the slot now so children order after their parent.
    {
        trace::Span ss;
        ss.spanId = server_span_id;
        ss.parentSpanId = has_client ? client_span_id : parent_span_id;
        ss.service = svc.name;
        ss.name = rpc.name;
        ss.kind = async_invocation ? trace::SpanKind::Consumer
                                   : trace::SpanKind::Server;
        ss.startUs = server_start;
        ss.container = inst.container;
        ss.pod = inst.pod;
        ss.node = inst.node;
        out->trace.spans.push_back(std::move(ss));
    }
    size_t server_span_slot = out->trace.spans.size() - 1;

    // Group children by barrier stage.
    std::map<int, std::vector<int>> stages;
    for (int c : node.children)
        stages[flow.nodes[static_cast<size_t>(c)].stage].push_back(c);

    bool sync_child_error = false;
    for (const auto &[stage, kids] : stages) {
        (void)stage;
        int64_t stage_end = t;
        for (int child : kids) {
            const synth::CallNode &cn =
                flow.nodes[static_cast<size_t>(child)];
            if (cn.async) {
                int64_t dispatch = static_cast<int64_t>(std::ceil(
                    rng_.logNormal(params_.asyncDispatchLogMu, 0.3)));
                simulateCall(flow, child, t, server_span_id, &inst,
                             true, false, out, causes);
                // The producer publish costs the parent only the
                // dispatch; the consumer runs on its own.
                stage_end = std::max(stage_end, t + dispatch);
            } else {
                CallOutcome oc = simulateCall(flow, child, t,
                                              server_span_id, &inst,
                                              false, sync_path, out,
                                              causes);
                sync_child_error |= oc.clientError;
                stage_end = std::max(stage_end, oc.clientEndUs);
            }
        }
        t = stage_end;
    }

    double end_mult = kernelMultiplier(server_faults,
                                       rpc.endKernel.resource);
    int64_t end_base = sampleKernel(rpc.endKernel);
    int64_t end_kernel = static_cast<int64_t>(
        static_cast<double>(end_base) * end_mult);
    if (sync_path && end_mult > 1.0)
        causes->addLatency(inst,
                           static_cast<double>(end_kernel - end_base));
    int64_t server_end = t + end_kernel;

    // --- Server error status. ---
    bool exclusive_error = rng_.bernoulli(rpc.baseErrorProb);
    for (const chaos::FaultSpec *f : server_faults) {
        if (f->type == chaos::FaultType::DiskStress &&
            f->errorProb > 0.0 &&
            (rpc.startKernel.resource == synth::Resource::Disk ||
             rpc.endKernel.resource == synth::Resource::Disk) &&
            rng_.bernoulli(f->errorProb)) {
            exclusive_error = true;
            if (sync_path)
                causes->addError(inst);
        }
    }
    bool server_error =
        exclusive_error ||
        (sync_child_error && !rng_.bernoulli(params_.errorHandleProb));

    {
        trace::Span &ss = out->trace.spans[server_span_slot];
        ss.endUs = server_end;
        ss.status = server_error ? trace::StatusCode::Error
                                 : trace::StatusCode::Ok;
    }

    if (!has_client)
        return {server_end, server_error};

    // --- Return hop, client-side network errors, timeout. ---
    int64_t back_base = sampleKernel(app_.network);
    int64_t net_back = static_cast<int64_t>(
        static_cast<double>(back_base) * net_mult);
    if (sync_path && net_mult > 1.0) {
        double added = static_cast<double>(net_back - back_base);
        if (server_net > 1.0)
            causes->addLatency(inst, added);
        if (caller_net > 1.0)
            causes->addLatency(*caller, added);
    }
    int64_t client_end = server_end + net_back;
    bool client_error = server_error;

    auto maybe_network_error = [&](const chaos::Instance &where,
                                   const std::vector<
                                       const chaos::FaultSpec *> &fs) {
        for (const chaos::FaultSpec *f : fs) {
            if (f->type == chaos::FaultType::NetworkError &&
                rng_.bernoulli(f->errorProb)) {
                client_error = true;
                if (sync_path)
                    causes->addError(where);
            }
        }
    };
    maybe_network_error(inst, server_faults);
    maybe_network_error(*caller, caller_faults);

    if (!async_invocation && rpc.timeoutUs > 0 &&
        client_end - client_start > rpc.timeoutUs) {
        client_end = client_start + rpc.timeoutUs;
        client_error = true;
    }

    {
        trace::Span &cs = out->trace.spans[client_span_slot];
        cs.endUs = client_end;
        cs.status = client_error ? trace::StatusCode::Error
                                 : trace::StatusCode::Ok;
    }
    // Producer (async) invocations never propagate errors or latency to
    // the caller; the caller only paid the dispatch cost.
    if (async_invocation)
        return {client_end, false};
    return {client_end, client_error};
}

SimResult
Simulator::simulateFlow(int flow_index)
{
    SLEUTH_ASSERT(flow_index >= 0 &&
                  flow_index < static_cast<int>(app_.flows.size()));
    const synth::FlowConfig &flow =
        app_.flows[static_cast<size_t>(flow_index)];
    SimResult out;
    out.flowIndex = flow_index;
    out.trace.traceId =
        app_.name + "-" + std::to_string(next_trace_++);
    CauseAccumulator causes;
    simulateCall(flow, flow.root, 0, "", nullptr, false, true, &out,
                 &causes);

    // --- Resolve ground truth: error injectors count when the root
    // errored; latency faults count when the added time is a material
    // fraction of the end-to-end duration. ---
    bool root_error = false;
    for (const trace::Span &s : out.trace.spans)
        if (s.parentSpanId.empty())
            root_error = s.hasError();
    double material_threshold =
        params_.materialityFraction *
        static_cast<double>(std::max<int64_t>(
            out.trace.rootDurationUs(), 1));
    for (const auto &[container, effect] : causes.byContainer) {
        (void)container;
        bool material =
            effect.addedUs >= material_threshold ||
            (effect.errorInjected && root_error);
        if (!material)
            continue;
        const chaos::Instance &inst = *effect.instance;
        out.rootCauseServices.insert(
            app_.services[static_cast<size_t>(inst.serviceId)].name);
        out.rootCauseContainers.insert(inst.container);
        out.rootCausePods.insert(inst.pod);
        out.rootCauseNodes.insert(inst.node);
    }
    return out;
}

SimResult
Simulator::simulateOne()
{
    return simulateFlow(
        static_cast<int>(rng_.weightedIndex(flow_weights_)));
}

std::vector<SimResult>
Simulator::simulateMany(size_t n)
{
    std::vector<SimResult> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i)
        out.push_back(simulateOne());
    return out;
}

void
Simulator::simulateStream(size_t n,
                          const std::function<void(SimResult &&)> &sink)
{
    for (size_t i = 0; i < n; ++i)
        sink(simulateOne());
}

void
Simulator::calibrateSlos(synth::AppConfig &app,
                         const ClusterModel &cluster,
                         size_t samples_per_flow, double pct,
                         uint64_t seed)
{
    SimParams params;
    params.seed = seed;
    Simulator sim(app, cluster, params);
    for (size_t f = 0; f < app.flows.size(); ++f) {
        std::vector<double> durations;
        durations.reserve(samples_per_flow);
        for (size_t i = 0; i < samples_per_flow; ++i) {
            SimResult r = sim.simulateFlow(static_cast<int>(f));
            durations.push_back(
                static_cast<double>(r.trace.rootDurationUs()));
        }
        app.flows[f].sloUs = static_cast<int64_t>(
            util::percentile(durations, pct));
    }
}

} // namespace sleuth::sim
