#include "cluster_model.h"

#include "util/rng.h"

namespace sleuth::sim {

ClusterModel::ClusterModel(const synth::AppConfig &app, int num_nodes,
                           uint64_t seed)
    : num_nodes_(num_nodes)
{
    SLEUTH_ASSERT(num_nodes >= 1);
    util::Rng rng(seed ^ 0xc105e7u);
    by_service_.resize(app.services.size());
    for (const synth::ServiceConfig &svc : app.services) {
        for (int r = 0; r < svc.replicas; ++r) {
            chaos::Instance inst;
            inst.serviceId = svc.id;
            inst.pod = svc.name + "-pod-" + std::to_string(r);
            inst.container = svc.name + "-ctr-" + std::to_string(r);
            inst.node = "node-" + std::to_string(
                rng.uniformInt(0, num_nodes - 1));
            by_service_[static_cast<size_t>(svc.id)].push_back(inst);
            all_.push_back(inst);
        }
    }
}

} // namespace sleuth::sim
