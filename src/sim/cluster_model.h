#pragma once

/**
 * @file
 * Deployment model: services -> pod replicas -> nodes, mirroring the
 * 100-node Kubernetes cluster of the paper's evaluation (§6.1.3). The
 * model supplies the instance coordinates stamped on spans and the
 * target inventory for chaos fault planning.
 */

#include <vector>

#include "chaos/fault.h"
#include "synth/config.h"

namespace sleuth::sim {

/** Placement of every service replica onto cluster nodes. */
class ClusterModel
{
  public:
    /**
     * Place an application's replicas.
     *
     * @param app application config (replica counts per service)
     * @param num_nodes cluster size (paper: 100)
     * @param seed placement randomness
     */
    ClusterModel(const synth::AppConfig &app, int num_nodes,
                 uint64_t seed);

    /** Instances (pod replicas) of one service. */
    const std::vector<chaos::Instance> &
    instancesOf(int service_id) const
    {
        return by_service_[static_cast<size_t>(service_id)];
    }

    /** Every instance in the deployment. */
    const std::vector<chaos::Instance> &allInstances() const
    {
        return all_;
    }

    /** Cluster node count. */
    int numNodes() const { return num_nodes_; }

  private:
    std::vector<std::vector<chaos::Instance>> by_service_;
    std::vector<chaos::Instance> all_;
    int num_nodes_;
};

} // namespace sleuth::sim
