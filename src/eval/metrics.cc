#include "metrics.h"

namespace sleuth::eval {

void
RcaEvaluator::addQuery(const std::set<std::string> &predicted,
                       const std::set<std::string> &actual)
{
    size_t tp = 0;
    for (const std::string &p : predicted)
        if (actual.count(p))
            ++tp;
    tp_ += tp;
    fp_ += predicted.size() - tp;
    fn_ += actual.size() - tp;
    if (predicted == actual)
        ++exact_;
    ++queries_;
}

double
RcaEvaluator::f1() const
{
    double denom = static_cast<double>(2 * tp_ + fp_ + fn_);
    if (denom == 0.0)
        return 0.0;
    return 2.0 * static_cast<double>(tp_) / denom;
}

double
RcaEvaluator::accuracy() const
{
    if (queries_ == 0)
        return 0.0;
    return static_cast<double>(exact_) /
           static_cast<double>(queries_);
}

std::set<std::string>
toSet(const std::vector<std::string> &items)
{
    return {items.begin(), items.end()};
}

} // namespace sleuth::eval
