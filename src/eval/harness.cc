#include "harness.h"

#include <set>

#include "synth/catalog.h"
#include "synth/generator.h"

namespace sleuth::eval {

std::string
toString(BenchmarkApp app)
{
    switch (app) {
      case BenchmarkApp::SockShop: return "SockShop";
      case BenchmarkApp::SocialNet: return "SocialNet";
      case BenchmarkApp::Syn16: return "Synthetic-16";
      case BenchmarkApp::Syn64: return "Synthetic-64";
      case BenchmarkApp::Syn256: return "Synthetic-256";
      case BenchmarkApp::Syn1024: return "Synthetic-1024";
    }
    util::panic("invalid benchmark app");
}

synth::AppConfig
makeApp(BenchmarkApp app, uint64_t seed)
{
    switch (app) {
      case BenchmarkApp::SockShop:
        return synth::sockShopConfig();
      case BenchmarkApp::SocialNet:
        return synth::socialNetworkConfig();
      case BenchmarkApp::Syn16:
        return synth::generateApp(synth::syntheticParams(16, seed));
      case BenchmarkApp::Syn64:
        return synth::generateApp(synth::syntheticParams(64, seed));
      case BenchmarkApp::Syn256:
        return synth::generateApp(synth::syntheticParams(256, seed));
      case BenchmarkApp::Syn1024:
        return synth::generateApp(synth::syntheticParams(1024, seed));
    }
    util::panic("invalid benchmark app");
}

ExperimentData
prepareExperiment(synth::AppConfig app, const ExperimentParams &raw)
{
    ExperimentParams params = raw;
    sim::ClusterModel cluster(app, params.clusterNodes, params.seed);
    if (params.targetFaultsPerPlan > 0.0) {
        // Rescale the Bernoulli incidences so the expected number of
        // simultaneous faults stays constant as the deployment grows.
        size_t n_inst = cluster.allInstances().size();
        std::set<std::string> pods, nodes;
        for (const chaos::Instance &i : cluster.allInstances()) {
            pods.insert(i.pod);
            nodes.insert(i.node);
        }
        double expected =
            params.chaosParams.containerProb *
                static_cast<double>(n_inst) +
            params.chaosParams.podProb *
                static_cast<double>(pods.size()) +
            params.chaosParams.nodeProb *
                static_cast<double>(nodes.size());
        if (expected > 0.0) {
            double scale = params.targetFaultsPerPlan / expected;
            params.chaosParams.containerProb =
                std::min(1.0, params.chaosParams.containerProb * scale);
            params.chaosParams.podProb =
                std::min(1.0, params.chaosParams.podProb * scale);
            params.chaosParams.nodeProb =
                std::min(1.0, params.chaosParams.nodeProb * scale);
        }
    }
    sim::Simulator::calibrateSlos(app, cluster, 300, 99.0,
                                  params.seed ^ 0xca1u);

    ExperimentData data{std::move(app), std::move(cluster), {}, {}};

    // Training corpus: mostly healthy traffic plus a slice produced
    // under random chaos plans, mimicking unlabeled production data
    // that naturally contains incidents (the labels are never used).
    sim::Simulator healthy(data.app, data.cluster,
                           {.seed = params.seed ^ 0x41ee7u});
    size_t faulty_count = static_cast<size_t>(
        params.faultyTrainFraction *
        static_cast<double>(params.trainTraces));
    data.trainCorpus.reserve(params.trainTraces);
    for (size_t i = 0; i + faulty_count < params.trainTraces; ++i)
        data.trainCorpus.push_back(healthy.simulateOne().trace);
    util::Rng train_rng(params.seed ^ 0x7a117u);
    size_t produced = 0;
    for (size_t plan_id = 0; produced < faulty_count; ++plan_id) {
        util::Rng plan_rng = train_rng.fork(plan_id);
        chaos::FaultPlan plan = chaos::planFaults(
            data.cluster.allInstances(), params.chaosParams, plan_rng);
        if (plan.empty())
            continue;
        sim::Simulator faulty(data.app, data.cluster,
                              {.seed = params.seed ^
                                       (0x8f00 + plan_id)},
                              plan);
        for (size_t k = 0; k < 8 && produced < faulty_count; ++k) {
            data.trainCorpus.push_back(faulty.simulateOne().trace);
            ++produced;
        }
        SLEUTH_ASSERT(plan_id < 100 * faulty_count + 100,
                      "chaos parameters never produce fault plans");
    }

    // Anomaly queries: draw independent chaos plans; harvest the
    // SLO-violating traces they materially touch.
    util::Rng rng(params.seed ^ 0xc4a05u);
    size_t plan_counter = 0;
    while (data.queries.size() < params.numQueries) {
        ++plan_counter;
        util::Rng plan_rng = rng.fork(plan_counter);
        chaos::FaultPlan plan = chaos::planFaults(
            data.cluster.allInstances(), params.chaosParams, plan_rng);
        if (plan.empty())
            continue;
        sim::Simulator faulty(data.app, data.cluster,
                              {.seed = params.seed ^
                                       (0xfa0 + plan_counter)},
                              plan);
        size_t harvested = 0;
        for (size_t attempt = 0;
             attempt < params.attemptsPerPlan *
                           std::max<size_t>(1, params.queriesPerPlan) &&
             data.queries.size() < params.numQueries &&
             harvested < params.queriesPerPlan;
             ++attempt) {
            sim::SimResult r = faulty.simulateOne();
            int64_t slo =
                data.app.flows[static_cast<size_t>(r.flowIndex)].sloUs;
            if (!r.faultTouched() || !r.violatesSlo(slo))
                continue;
            AnomalyQuery q;
            q.trace = std::move(r.trace);
            q.sloUs = slo;
            q.truthServices = std::move(r.rootCauseServices);
            q.truthContainers = std::move(r.rootCauseContainers);
            q.truthPods = std::move(r.rootCausePods);
            q.truthNodes = std::move(r.rootCauseNodes);
            data.queries.push_back(std::move(q));
            ++harvested;
        }
        SLEUTH_ASSERT(plan_counter < 200 * params.numQueries + 1000,
                      "chaos parameters never produce anomalies");
    }
    return data;
}

Scores
evaluateFitted(baselines::RcaAlgorithm &algo, const ExperimentData &data)
{
    RcaEvaluator ev;
    for (const AnomalyQuery &q : data.queries)
        ev.addQuery(toSet(algo.locate(q.trace, q.sloUs)),
                    q.truthServices);
    return {ev.f1(), ev.accuracy()};
}

Scores
evaluateAlgorithm(baselines::RcaAlgorithm &algo,
                  const ExperimentData &data)
{
    algo.fit(data.trainCorpus);
    return evaluateFitted(algo, data);
}

SleuthAdapter::SleuthAdapter(Config config)
    : config_(config), encoder_(config.gnn.embedDim)
{
}

std::string
SleuthAdapter::name() const
{
    return config_.gnn.aggregator == core::Aggregator::Gin
        ? "sleuth-gin"
        : "sleuth-gcn";
}

void
SleuthAdapter::fit(const std::vector<trace::Trace> &corpus)
{
    model_ = std::make_unique<core::SleuthGnn>(config_.gnn);
    profile_ = core::NormalProfile();
    for (const trace::Trace &t : corpus)
        profile_.add(t);
    profile_.finalize();
    core::Trainer trainer(*model_, encoder_, config_.train);
    trainer.train(corpus);
    fitted_ = true;
}

void
SleuthAdapter::fineTune(const core::SleuthGnn &pretrained,
                        const std::vector<trace::Trace> &corpus,
                        int epochs)
{
    // Snapshot first: `pretrained` may alias the model this adapter
    // currently owns (self-fine-tuning on streamed data).
    util::Json blob = pretrained.save();
    core::GnnConfig pretrained_cfg = pretrained.config();
    model_ = std::make_unique<core::SleuthGnn>(pretrained_cfg);
    model_->load(blob);
    profile_ = core::NormalProfile();
    for (const trace::Trace &t : corpus)
        profile_.add(t);
    profile_.finalize();
    if (epochs > 0 && !corpus.empty()) {
        core::TrainConfig tc = config_.train;
        tc.epochs = epochs;
        tc.learningRate = config_.train.learningRate * 0.3;
        core::Trainer trainer(*model_, encoder_, tc);
        trainer.train(corpus);
    }
    fitted_ = true;
}

std::vector<std::string>
SleuthAdapter::locate(const trace::Trace &anomaly, int64_t slo_us)
{
    SLEUTH_ASSERT(fitted_, "sleuth adapter not fitted");
    core::CounterfactualRca rca(*model_, encoder_, profile_,
                                config_.rca);
    return rca.analyze(anomaly, slo_us).services;
}

const core::SleuthGnn &
SleuthAdapter::model() const
{
    SLEUTH_ASSERT(fitted_, "sleuth adapter not fitted");
    return *model_;
}

Scores
evaluatePipeline(SleuthAdapter &adapter, const ExperimentData &data,
                 const core::PipelineConfig &pipeline,
                 const std::function<double(size_t, size_t)>
                     *custom_distance,
                 size_t *rca_invocations, Scores *container_scores)
{
    core::SleuthPipeline pipe(adapter.model(), adapter.encoder(),
                              adapter.profile(), pipeline);
    std::vector<trace::Trace> traces;
    std::vector<int64_t> slos;
    for (const AnomalyQuery &q : data.queries) {
        traces.push_back(q.trace);
        slos.push_back(q.sloUs);
    }
    core::PipelineResult res = custom_distance
        ? pipe.analyzeWithDistance(traces, slos, *custom_distance)
        : pipe.analyze(traces, slos);
    if (rca_invocations)
        *rca_invocations = res.rcaInvocations;

    RcaEvaluator ev;
    for (size_t i = 0; i < data.queries.size(); ++i)
        ev.addQuery(toSet(res.perTrace[i].services),
                    data.queries[i].truthServices);
    if (container_scores) {
        RcaEvaluator cev;
        for (size_t i = 0; i < data.queries.size(); ++i)
            cev.addQuery(res.perTrace[i].containers,
                         data.queries[i].truthContainers);
        *container_scores = {cev.f1(), cev.accuracy()};
    }
    return {ev.f1(), ev.accuracy()};
}

} // namespace sleuth::eval
