#pragma once

/**
 * @file
 * Accuracy metrics of paper §6.1.5: per-query TP/FP/FN against the
 * ground-truth root-cause set, aggregated across all RCA queries into
 * the F1 score, plus the stricter exact-set-match accuracy (ACC).
 */

#include <set>
#include <string>
#include <vector>

namespace sleuth::eval {

/** Accumulates RCA query outcomes and reports F1 / ACC. */
class RcaEvaluator
{
  public:
    /**
     * Record one query.
     *
     * @param predicted the algorithm's root-cause set
     * @param actual the ground-truth root-cause set
     */
    void addQuery(const std::set<std::string> &predicted,
                  const std::set<std::string> &actual);

    /** F1 = 2 TP / (2 TP + FP + FN) over all queries. */
    double f1() const;

    /** ACC = fraction of queries with exact set match. */
    double accuracy() const;

    /** Number of queries recorded. */
    size_t queries() const { return queries_; }

    /** Aggregate true positives. */
    size_t tp() const { return tp_; }
    /** Aggregate false positives. */
    size_t fp() const { return fp_; }
    /** Aggregate false negatives. */
    size_t fn() const { return fn_; }

  private:
    size_t tp_ = 0, fp_ = 0, fn_ = 0;
    size_t exact_ = 0, queries_ = 0;
};

/** Convenience conversion. */
std::set<std::string> toSet(const std::vector<std::string> &items);

} // namespace sleuth::eval
