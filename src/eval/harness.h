#pragma once

/**
 * @file
 * Shared experiment harness (paper §6.1): benchmark application
 * catalog, training-corpus + anomaly-query generation via chaos
 * engineering, and uniform evaluation of RCA algorithms (including the
 * Sleuth adapters and the clustered pipeline variants).
 */

#include <memory>
#include <set>

#include "baselines/rca_algorithm.h"
#include "core/pipeline.h"
#include "core/trainer.h"
#include "eval/metrics.h"
#include "sim/simulator.h"
#include "synth/config.h"

namespace sleuth::eval {

/** The applications of Table 1. */
enum class BenchmarkApp {
    SockShop,
    SocialNet,
    Syn16,
    Syn64,
    Syn256,
    Syn1024,
};

/** Table row label of a benchmark. */
std::string toString(BenchmarkApp app);

/** Build the application config of a benchmark. */
synth::AppConfig makeApp(BenchmarkApp app, uint64_t seed = 1);

/**
 * One RCA query: an anomalous trace with chaos ground truth at every
 * blast-radius scope. Service names alone cannot distinguish a
 * container-scoped fault from a node-scoped one, so the simulator's
 * materially-perturbing containers/pods/nodes ride along for
 * scope-aware evaluation (campaign invariants, container-truth rows).
 */
struct AnomalyQuery
{
    trace::Trace trace;
    int64_t sloUs = 0;
    std::set<std::string> truthServices;
    std::set<std::string> truthContainers;
    std::set<std::string> truthPods;
    std::set<std::string> truthNodes;
};

/** Experiment generation knobs (paper §6.2: 144k traces, 100 queries). */
struct ExperimentParams
{
    size_t trainTraces = 400;
    /**
     * Fraction of the training corpus simulated under random chaos
     * plans. The paper samples 24h of production traffic, which
     * naturally contains incidents; training stays unsupervised (no
     * labels are used), but the model must see abnormal durations to
     * learn the clipping thresholds of Eq. 2 across the whole range.
     */
    double faultyTrainFraction = 0.15;
    size_t numQueries = 100;
    /** Chaos incidence per instance when drawing fault plans. */
    chaos::ChaosParams chaosParams{.containerProb = 0.02,
                                   .podProb = 0.01,
                                   .nodeProb = 0.004};
    /**
     * Expected concurrent faults per chaos plan; the per-instance
     * probabilities above are rescaled so large deployments do not get
     * proportionally more simultaneous incidents (0 disables).
     */
    double targetFaultsPerPlan = 2.0;
    /** Traces attempted per fault plan before drawing a new plan. */
    size_t attemptsPerPlan = 60;
    /**
     * Anomalous traces harvested per fault plan. 1 keeps failure modes
     * maximally diverse (the per-query accuracy evaluation); larger
     * values emulate an incident storm where many traces share a few
     * failure modes (the clustering evaluation, paper §3.3).
     */
    size_t queriesPerPlan = 1;
    uint64_t seed = 1;
    int clusterNodes = 100;
};

/** A prepared experiment: app, deployment, corpus, queries. */
struct ExperimentData
{
    synth::AppConfig app;
    sim::ClusterModel cluster;
    std::vector<trace::Trace> trainCorpus;
    std::vector<AnomalyQuery> queries;
};

/**
 * Prepare an experiment: calibrate SLOs, simulate the fault-free
 * training corpus, then draw chaos fault plans (independent Bernoulli
 * per instance, §6.1.4) and harvest SLO-violating traces with their
 * ground truth until numQueries anomalies exist.
 */
ExperimentData prepareExperiment(synth::AppConfig app,
                                 const ExperimentParams &params);

/** F1 / ACC of one run. */
struct Scores
{
    double f1 = 0.0;
    double acc = 0.0;
};

/** Fit an algorithm on the corpus and evaluate it over the queries. */
Scores evaluateAlgorithm(baselines::RcaAlgorithm &algo,
                         const ExperimentData &data);

/** Evaluate an already-fitted algorithm over the queries. */
Scores evaluateFitted(baselines::RcaAlgorithm &algo,
                      const ExperimentData &data);

/**
 * Sleuth wrapped as an RcaAlgorithm (GIN or GCN aggregation), exposing
 * its parts for the transfer-learning and clustering experiments.
 */
class SleuthAdapter : public baselines::RcaAlgorithm
{
  public:
    /** Assembly knobs. */
    struct Config
    {
        core::GnnConfig gnn;
        core::TrainConfig train;
        core::RcaParams rca;
    };

    explicit SleuthAdapter(Config config);

    /** Construct with default configuration. */
    SleuthAdapter() : SleuthAdapter(Config()) {}

    std::string name() const override;
    void fit(const std::vector<trace::Trace> &corpus) override;
    std::vector<std::string> locate(const trace::Trace &anomaly,
                                    int64_t slo_us) override;

    /**
     * Fine-tune from an existing model instead of training from
     * scratch: installs the pre-trained weights, then runs `epochs`
     * over the corpus (0 = zero-shot: profile only, no training).
     */
    void fineTune(const core::SleuthGnn &pretrained,
                  const std::vector<trace::Trace> &corpus, int epochs);

    /** The trained model. */
    const core::SleuthGnn &model() const;
    /** The feature encoder (shared embedding cache). */
    core::FeatureEncoder &encoder() { return encoder_; }
    /** The normal profile. */
    const core::NormalProfile &profile() const { return profile_; }

  private:
    Config config_;
    core::FeatureEncoder encoder_;
    std::unique_ptr<core::SleuthGnn> model_;
    core::NormalProfile profile_;
    bool fitted_ = false;
};

/**
 * Evaluate the full Sleuth pipeline (clustering + per-representative
 * RCA) over an experiment's queries.
 *
 * @param adapter fitted Sleuth adapter
 * @param data the experiment
 * @param pipeline pipeline configuration
 * @param custom_distance optional distance override (e.g. DeepTraLog);
 *        null uses the weighted-Jaccard default
 * @param rca_invocations optional out-param: RCA calls executed
 * @param container_scores optional out-param: F1/ACC of the predicted
 *        container set against the scope-aware container ground truth
 */
Scores evaluatePipeline(
    SleuthAdapter &adapter, const ExperimentData &data,
    const core::PipelineConfig &pipeline,
    const std::function<double(size_t, size_t)> *custom_distance =
        nullptr,
    size_t *rca_invocations = nullptr,
    Scores *container_scores = nullptr);

} // namespace sleuth::eval
