#pragma once

/**
 * @file
 * Bounded multi-producer / single-consumer ring buffer (DESIGN.md
 * §3.13): the ingest spine of the online serving layer.
 *
 * The layout is the classic sequence-stamped ring (Vyukov's bounded
 * queue, restricted here to one consumer): a power-of-two slot array
 * where every slot carries an atomic sequence number. A producer
 * claims a slot by CAS on the enqueue cursor, moves its payload in,
 * and publishes by bumping the slot sequence; the consumer observes
 * the sequence, moves the payload out, and re-arms the slot for the
 * next lap. Producers never block, never allocate, and never touch a
 * lock — contention is one CAS on the shared cursor plus a release
 * store into a claimed slot. tryPush() fails (returns false) when the
 * ring is full; the caller owns the shed decision.
 *
 * drainInto() is strictly single-consumer: the online service's
 * poll() is the only drainer of a shard's ring. The drain order
 * interleaves producer streams nondeterministically, which is why the
 * service canonically re-sorts every drained batch by event time
 * before any decision (shedding, assembly) is taken — see the
 * determinism discussion in DESIGN.md §3.13.
 */

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace sleuth::util {

/** Round up to the next power of two (minimum 2). */
inline size_t
ceilPow2(size_t n)
{
    size_t p = 2;
    while (p < n)
        p <<= 1;
    return p;
}

template <typename T>
class MpscRing
{
  public:
    /** Capacity is rounded up to a power of two. */
    explicit MpscRing(size_t capacity)
        : mask_(ceilPow2(capacity) - 1),
          slots_(std::make_unique<Slot[]>(mask_ + 1))
    {
        SLEUTH_ASSERT(capacity > 0, "ring capacity must be positive");
        for (size_t i = 0; i <= mask_; ++i)
            slots_[i].seq.store(i, std::memory_order_relaxed);
    }

    /**
     * Enqueue (multi-producer safe). Returns false — payload
     * untouched — when the ring is full.
     */
    bool
    tryPush(T &&v)
    {
        size_t pos = enqueue_.load(std::memory_order_relaxed);
        for (;;) {
            Slot &slot = slots_[pos & mask_];
            size_t seq = slot.seq.load(std::memory_order_acquire);
            intptr_t dif = static_cast<intptr_t>(seq) -
                           static_cast<intptr_t>(pos);
            if (dif == 0) {
                if (enqueue_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    slot.value = std::move(v);
                    slot.seq.store(pos + 1,
                                   std::memory_order_release);
                    return true;
                }
                // CAS reloaded pos; retry against the new slot.
            } else if (dif < 0) {
                // A full lap behind: the consumer has not re-armed
                // this slot yet, so the ring is full.
                return false;
            } else {
                pos = enqueue_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Move every currently published entry into `out` (appended).
     * Single-consumer only. Returns the number of entries drained.
     * Entries a producer has claimed but not yet published stay for
     * the next drain — the drain never spins on a slow producer.
     */
    size_t
    drainInto(std::vector<T> *out)
    {
        size_t drained = 0;
        for (;;) {
            Slot &slot = slots_[dequeue_ & mask_];
            size_t seq = slot.seq.load(std::memory_order_acquire);
            if (static_cast<intptr_t>(seq) -
                    static_cast<intptr_t>(dequeue_ + 1) !=
                0)
                break;
            out->push_back(std::move(slot.value));
            slot.value = T{};
            // Re-arm for the producer's next lap over this slot.
            slot.seq.store(dequeue_ + mask_ + 1,
                           std::memory_order_release);
            ++dequeue_;
            ++drained;
        }
        return drained;
    }

    /** Physical slot count (post power-of-two rounding). */
    size_t capacity() const { return mask_ + 1; }

    /**
     * Published-but-undrained entry estimate. Exact when producers
     * are quiescent (the barrier points where callers read it).
     */
    size_t
    sizeApprox() const
    {
        size_t enq = enqueue_.load(std::memory_order_acquire);
        return enq >= dequeue_ ? enq - dequeue_ : 0;
    }

  private:
    struct alignas(64) Slot
    {
        std::atomic<size_t> seq{0};
        T value{};
    };

    const size_t mask_;
    std::unique_ptr<Slot[]> slots_;
    /** Producer cursor (own cacheline: producers CAS it). */
    alignas(64) std::atomic<size_t> enqueue_{0};
    /** Consumer cursor (plain: single consumer). */
    alignas(64) size_t dequeue_ = 0;
};

} // namespace sleuth::util
