#pragma once

/**
 * @file
 * Descriptive statistics used across the library: batch summaries,
 * percentiles, CDF sampling, and online (Welford) accumulation.
 */

#include <cstddef>
#include <utility>
#include <vector>

namespace sleuth::util {

/** Arithmetic mean of a non-empty sample. */
double mean(const std::vector<double> &xs);

/** Unbiased sample variance (zero for samples of size < 2). */
double variance(const std::vector<double> &xs);

/** Unbiased sample standard deviation. */
double stddev(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile of a sample.
 *
 * @param xs sample values (copied and sorted internally)
 * @param p percentile in [0, 100]
 */
double percentile(const std::vector<double> &xs, double p);

/** Median (50th percentile). */
double median(const std::vector<double> &xs);

/**
 * Sample the empirical CDF at evenly spaced quantiles.
 *
 * @return (value, cumulative probability) pairs, `points` of them.
 */
std::vector<std::pair<double, double>>
cdfPoints(std::vector<double> xs, size_t points);

/** Online mean/variance accumulator (Welford's algorithm). */
class OnlineStats
{
  public:
    /** Fold one observation into the accumulator. */
    void add(double x);

    /** Number of observations so far. */
    size_t count() const { return n_; }

    /** Mean of observations so far (0 when empty). */
    double mean() const { return mean_; }

    /** Unbiased sample variance (0 for fewer than two observations). */
    double variance() const;

    /** Unbiased sample standard deviation. */
    double stddev() const;

    /** Smallest observation so far. */
    double min() const { return min_; }

    /** Largest observation so far. */
    double max() const { return max_; }

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace sleuth::util
