#include "json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "logging.h"

namespace sleuth::util {

bool
Json::asBool() const
{
    SLEUTH_ASSERT(type_ == Type::Bool, "json: not a bool");
    return bool_;
}

double
Json::asNumber() const
{
    SLEUTH_ASSERT(type_ == Type::Number, "json: not a number");
    return num_;
}

int64_t
Json::asInt() const
{
    return static_cast<int64_t>(std::llround(asNumber()));
}

const std::string &
Json::asString() const
{
    SLEUTH_ASSERT(type_ == Type::String, "json: not a string");
    return str_;
}

const Json::Array &
Json::asArray() const
{
    SLEUTH_ASSERT(type_ == Type::Array, "json: not an array");
    return arr_;
}

Json::Array &
Json::asArray()
{
    SLEUTH_ASSERT(type_ == Type::Array, "json: not an array");
    return arr_;
}

const Json::Object &
Json::asObject() const
{
    SLEUTH_ASSERT(type_ == Type::Object, "json: not an object");
    return obj_;
}

Json::Object &
Json::asObject()
{
    SLEUTH_ASSERT(type_ == Type::Object, "json: not an object");
    return obj_;
}

const Json &
Json::at(const std::string &key) const
{
    const Object &o = asObject();
    auto it = o.find(key);
    SLEUTH_ASSERT(it != o.end(), "json: missing key '", key, "'");
    return it->second;
}

bool
Json::has(const std::string &key) const
{
    return type_ == Type::Object && obj_.count(key) > 0;
}

void
Json::set(const std::string &key, Json value)
{
    SLEUTH_ASSERT(type_ == Type::Object, "json: not an object");
    obj_[key] = std::move(value);
}

void
Json::push(Json value)
{
    SLEUTH_ASSERT(type_ == Type::Array, "json: not an array");
    arr_.push_back(std::move(value));
}

namespace {

void
escapeTo(std::string &out, const std::string &s)
{
    out.push_back('"');
    for (char ch : s) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
                out += buf;
            } else {
                out.push_back(ch);
            }
        }
    }
    out.push_back('"');
}

void
numberTo(std::string &out, double v)
{
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        out += buf;
    } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        out += buf;
    }
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out.push_back('\n');
            out.append(static_cast<size_t>(indent * d), ' ');
        }
    };
    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        numberTo(out, num_);
        break;
      case Type::String:
        escapeTo(out, str_);
        break;
      case Type::Array:
        out.push_back('[');
        for (size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out.push_back(',');
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out.push_back(']');
        break;
      case Type::Object:
        out.push_back('{');
        {
            size_t i = 0;
            for (const auto &[k, v] : obj_) {
                if (i++)
                    out.push_back(',');
                newline(depth + 1);
                escapeTo(out, k);
                out.push_back(':');
                if (indent > 0)
                    out.push_back(' ');
                v.dumpTo(out, indent, depth + 1);
            }
        }
        if (!obj_.empty())
            newline(depth);
        out.push_back('}');
        break;
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser over a raw character buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error) {}

    Json
    run()
    {
        Json v = value();
        skipWs();
        if (!failed_ && pos_ != text_.size())
            fail("trailing characters");
        return failed_ ? Json() : v;
    }

    bool failed() const { return failed_; }

  private:
    void
    fail(const std::string &why)
    {
        if (!failed_ && error_)
            *error_ = why + " at offset " + std::to_string(pos_);
        failed_ = true;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    Json
    value()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return Json();
        }
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return Json(string());
        if (c == 't') {
            if (literal("true"))
                return Json(true);
            fail("bad literal");
            return Json();
        }
        if (c == 'f') {
            if (literal("false"))
                return Json(false);
            fail("bad literal");
            return Json();
        }
        if (c == 'n') {
            if (literal("null"))
                return Json();
            fail("bad literal");
            return Json();
        }
        return number();
    }

    Json
    number()
    {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (start == pos_) {
            fail("expected value");
            return Json();
        }
        char *end = nullptr;
        std::string tok = text_.substr(start, pos_ - start);
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) {
            fail("bad number");
            return Json();
        }
        return Json(v);
    }

    /** Consume 4 hex digits into *code; fail()s on malformed input. */
    bool
    hex4(unsigned *code)
    {
        if (pos_ + 4 > text_.size()) {
            fail("bad unicode escape");
            return false;
        }
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9')
                v += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
                v += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                v += static_cast<unsigned>(h - 'A' + 10);
            else {
                fail("bad unicode escape");
                return false;
            }
        }
        *code = v;
        return true;
    }

    std::string
    string()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                char e = text_[pos_++];
                switch (e) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'n': out.push_back('\n'); break;
                  case 't': out.push_back('\t'); break;
                  case 'r': out.push_back('\r'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'u': {
                    unsigned code = 0;
                    if (!hex4(&code))
                        return out;
                    // UTF-16 surrogate pairs: a high surrogate must be
                    // followed by an escaped low surrogate; the pair
                    // combines into one supplementary code point
                    // (emitting the halves separately would be invalid
                    // CESU-8, not UTF-8). Lone surrogates of either
                    // kind are parse errors.
                    if (code >= 0xd800 && code <= 0xdbff) {
                        if (pos_ + 2 > text_.size() ||
                            text_[pos_] != '\\' ||
                            text_[pos_ + 1] != 'u') {
                            fail("lone high surrogate");
                            return out;
                        }
                        pos_ += 2;
                        unsigned low = 0;
                        if (!hex4(&low))
                            return out;
                        if (low < 0xdc00 || low > 0xdfff) {
                            fail("bad low surrogate");
                            return out;
                        }
                        code = 0x10000 + ((code - 0xd800) << 10) +
                               (low - 0xdc00);
                    } else if (code >= 0xdc00 && code <= 0xdfff) {
                        fail("lone low surrogate");
                        return out;
                    }
                    // Encode the code point as UTF-8 (1-4 bytes).
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    } else if (code < 0x10000) {
                        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xf0 | (code >> 18)));
                        out.push_back(static_cast<char>(
                            0x80 | ((code >> 12) & 0x3f)));
                        out.push_back(static_cast<char>(
                            0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                  }
                  default:
                    fail("bad escape");
                    return out;
                }
            } else {
                out.push_back(c);
            }
        }
        fail("unterminated string");
        return out;
    }

    Json
    array()
    {
        Json out = Json::array();
        consume('[');
        skipWs();
        if (consume(']'))
            return out;
        while (true) {
            out.push(value());
            if (failed_)
                return Json();
            skipWs();
            if (consume(']'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or ']'");
                return Json();
            }
        }
    }

    Json
    object()
    {
        Json out = Json::object();
        consume('{');
        skipWs();
        if (consume('}'))
            return out;
        while (true) {
            skipWs();
            std::string key = string();
            if (failed_)
                return Json();
            skipWs();
            if (!consume(':')) {
                fail("expected ':'");
                return Json();
            }
            out.set(key, value());
            if (failed_)
                return Json();
            skipWs();
            if (consume('}'))
                return out;
            if (!consume(',')) {
                fail("expected ',' or '}'");
                return Json();
            }
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
    bool failed_ = false;
};

} // namespace

Json
Json::parse(const std::string &text, std::string *error)
{
    std::string local_error;
    Parser p(text, error ? error : &local_error);
    Json v = p.run();
    if (p.failed())
        return Json();
    if (error)
        error->clear();
    return v;
}

} // namespace sleuth::util
