#pragma once

/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: inform() and warn() report status without
 * stopping execution; fatal() terminates because of a user-correctable
 * condition (bad configuration, invalid arguments); panic() aborts because
 * of an internal invariant violation (a bug in this library).
 */

#include <sstream>
#include <string>

namespace sleuth::util {

namespace detail {

/** Render a sequence of stream-insertable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit a tagged message on stderr. */
void emit(const char *tag, const std::string &msg);

/** Emit a tagged message and exit(1). */
[[noreturn]] void emitFatal(const std::string &msg);

/** Emit a tagged message and abort(). */
[[noreturn]] void emitPanic(const std::string &msg);

} // namespace detail

/** Report normal operating status the user should see. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Report a condition that might indicate a problem but is survivable. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate because of a condition that is the caller's fault
 * (bad configuration or arguments), not a library bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitFatal(detail::concat(std::forward<Args>(args)...));
}

/**
 * Abort because something happened that should never happen regardless
 * of what the caller does — an internal bug.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitPanic(detail::concat(std::forward<Args>(args)...));
}

/** Panic with a message unless the condition holds. */
#define SLEUTH_ASSERT(cond, ...)                                            \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sleuth::util::panic("assertion failed: ", #cond, " ",        \
                                  ##__VA_ARGS__);                           \
        }                                                                   \
    } while (0)

} // namespace sleuth::util
