#include "simd.h"

#include <atomic>

#if defined(SLEUTH_SIMD_AVX2) && (defined(__x86_64__) || defined(__i386__))
#define SLEUTH_AVX2_BODIES 1
#include <immintrin.h>
#else
#define SLEUTH_AVX2_BODIES 0
#endif

namespace sleuth::simd {

namespace {
std::atomic<bool> g_force_scalar{false};
} // namespace

bool
compiledAvx2()
{
    return SLEUTH_AVX2_BODIES != 0;
}

bool
cpuAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool supported = __builtin_cpu_supports("avx2");
    return supported;
#else
    return false;
#endif
}

bool
active()
{
    static const bool available = compiledAvx2() && cpuAvx2();
    return available && !g_force_scalar.load(std::memory_order_relaxed);
}

void
forceScalar(bool on)
{
    g_force_scalar.store(on, std::memory_order_relaxed);
}

const char *
activeIsaName()
{
    return active() ? "avx2" : "scalar";
}

/*
 * Scalar mirrors. Loop shapes deliberately follow the AVX2 lane
 * structure (see simd.h) so the two paths are bitwise identical.
 */
namespace scalar {

void
axpy(double *y, double a, const double *x, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

void
add(double *acc, const double *x, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] += x[i];
}

void
scale(double *x, double s, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        x[i] *= s;
}

void
div(double *x, double s, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        x[i] /= s;
}

double
dotBlocked(const double *a, const double *b, size_t n)
{
    double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        l0 += a[i] * b[i];
        l1 += a[i + 1] * b[i + 1];
        l2 += a[i + 2] * b[i + 2];
        l3 += a[i + 3] * b[i + 3];
    }
    double tail = 0.0;
    for (; i < n; ++i)
        tail += a[i] * b[i];
    return ((l0 + l1) + (l2 + l3)) + tail;
}

void
dotRows4(const double *a, const double *b0, const double *b1,
         const double *b2, const double *b3, size_t n, double out[4])
{
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t t = 0; t < n; ++t) {
        const double at = a[t];
        s0 += at * b0[t];
        s1 += at * b1[t];
        s2 += at * b2[t];
        s3 += at * b3[t];
    }
    out[0] = s0;
    out[1] = s1;
    out[2] = s2;
    out[3] = s3;
}

double
sortedIntersectMinSum(const uint64_t *ka, const double *wa, size_t na,
                      const uint64_t *kb, const double *wb, size_t nb)
{
    // The block compare is only attempted once the heads already
    // match: disjoint stretches (the common case for traces of
    // different flows) run the tight two-pointer merge with no vector
    // overhead, while near-identical key arrays (same-flow traces)
    // take 4-wide steps.
    double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
    double singles = 0.0;
    size_t i = 0, j = 0;
    while (i < na && j < nb) {
        if (ka[i] < kb[j]) {
            ++i;
            continue;
        }
        if (kb[j] < ka[i]) {
            ++j;
            continue;
        }
        if (i + 4 <= na && j + 4 <= nb && ka[i + 1] == kb[j + 1] &&
            ka[i + 2] == kb[j + 2] && ka[i + 3] == kb[j + 3]) {
            // MINPD semantics: second operand wins ties/NaN.
            l0 += (wa[i] < wb[j]) ? wa[i] : wb[j];
            l1 += (wa[i + 1] < wb[j + 1]) ? wa[i + 1] : wb[j + 1];
            l2 += (wa[i + 2] < wb[j + 2]) ? wa[i + 2] : wb[j + 2];
            l3 += (wa[i + 3] < wb[j + 3]) ? wa[i + 3] : wb[j + 3];
            i += 4;
            j += 4;
            continue;
        }
        singles += (wa[i] < wb[j]) ? wa[i] : wb[j];
        ++i;
        ++j;
    }
    return ((l0 + l1) + (l2 + l3)) + singles;
}

int64_t
dotI8(const int8_t *a, const int8_t *b, size_t n)
{
    int64_t acc = 0;
    for (size_t i = 0; i < n; ++i)
        acc += static_cast<int64_t>(a[i]) * static_cast<int64_t>(b[i]);
    return acc;
}

} // namespace scalar

#if SLEUTH_AVX2_BODIES

namespace avx2 {

__attribute__((target("avx2"))) void
axpy(double *y, double a, const double *x, size_t n)
{
    const __m256d va = _mm256_set1_pd(a);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vx = _mm256_loadu_pd(x + i);
        const __m256d vy = _mm256_loadu_pd(y + i);
        _mm256_storeu_pd(y + i,
                         _mm256_add_pd(vy, _mm256_mul_pd(va, vx)));
    }
    for (; i < n; ++i)
        y[i] += a * x[i];
}

__attribute__((target("avx2"))) void
add(double *acc, const double *x, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vx = _mm256_loadu_pd(x + i);
        const __m256d va = _mm256_loadu_pd(acc + i);
        _mm256_storeu_pd(acc + i, _mm256_add_pd(va, vx));
    }
    for (; i < n; ++i)
        acc[i] += x[i];
}

__attribute__((target("avx2"))) void
scale(double *x, double s, size_t n)
{
    const __m256d vs = _mm256_set1_pd(s);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vx = _mm256_loadu_pd(x + i);
        _mm256_storeu_pd(x + i, _mm256_mul_pd(vx, vs));
    }
    for (; i < n; ++i)
        x[i] *= s;
}

__attribute__((target("avx2"))) void
div(double *x, double s, size_t n)
{
    const __m256d vs = _mm256_set1_pd(s);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d vx = _mm256_loadu_pd(x + i);
        _mm256_storeu_pd(x + i, _mm256_div_pd(vx, vs));
    }
    for (; i < n; ++i)
        x[i] /= s;
}

__attribute__((target("avx2"))) double
dotBlocked(const double *a, const double *b, size_t n)
{
    __m256d acc = _mm256_setzero_pd();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d va = _mm256_loadu_pd(a + i);
        const __m256d vb = _mm256_loadu_pd(b + i);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
    }
    alignas(32) double lane[4];
    _mm256_store_pd(lane, acc);
    double tail = 0.0;
    for (; i < n; ++i)
        tail += a[i] * b[i];
    return ((lane[0] + lane[1]) + (lane[2] + lane[3])) + tail;
}

__attribute__((target("avx2"))) void
dotRows4(const double *a, const double *b0, const double *b1,
         const double *b2, const double *b3, size_t n, double out[4])
{
    __m256d acc = _mm256_setzero_pd();
    for (size_t t = 0; t < n; ++t) {
        const __m256d va = _mm256_set1_pd(a[t]);
        const __m256d vb = _mm256_set_pd(b3[t], b2[t], b1[t], b0[t]);
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
    }
    _mm256_storeu_pd(out, acc);
}

__attribute__((target("avx2"))) double
sortedIntersectMinSum(const uint64_t *ka, const double *wa, size_t na,
                      const uint64_t *kb, const double *wb, size_t nb)
{
    // Mirror of the scalar merge structure: the vector compare is only
    // attempted once the heads already match, so disjoint stretches
    // cost exactly a two-pointer merge and equal runs take 4-wide
    // steps through MINPD.
    __m256d acc = _mm256_setzero_pd();
    double singles = 0.0;
    size_t i = 0, j = 0;
    while (i < na && j < nb) {
        if (ka[i] < kb[j]) {
            ++i;
            continue;
        }
        if (kb[j] < ka[i]) {
            ++j;
            continue;
        }
        if (i + 4 <= na && j + 4 <= nb) {
            const __m256i keya = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(ka + i));
            const __m256i keyb = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(kb + j));
            const __m256i eq = _mm256_cmpeq_epi64(keya, keyb);
            if (_mm256_movemask_pd(_mm256_castsi256_pd(eq)) == 0xF) {
                const __m256d va = _mm256_loadu_pd(wa + i);
                const __m256d vb = _mm256_loadu_pd(wb + j);
                acc = _mm256_add_pd(acc, _mm256_min_pd(va, vb));
                i += 4;
                j += 4;
                continue;
            }
        }
        singles += (wa[i] < wb[j]) ? wa[i] : wb[j];
        ++i;
        ++j;
    }
    alignas(32) double lane[4];
    _mm256_store_pd(lane, acc);
    return ((lane[0] + lane[1]) + (lane[2] + lane[3])) + singles;
}

__attribute__((target("avx2"))) int64_t
dotI8(const int8_t *a, const int8_t *b, size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i va = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i)));
        const __m256i vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i)));
        // madd pairs: 8 lanes of int32, each |sum| <= 2*127*127.
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
    }
    alignas(32) int32_t lane[8];
    _mm256_store_si256(reinterpret_cast<__m256i *>(lane), acc);
    int64_t total = 0;
    for (int l = 0; l < 8; ++l)
        total += lane[l];
    for (; i < n; ++i)
        total +=
            static_cast<int64_t>(a[i]) * static_cast<int64_t>(b[i]);
    return total;
}

} // namespace avx2

#else // !SLEUTH_AVX2_BODIES

/*
 * -DSLEUTH_SIMD=OFF (or a non-x86 target): keep the avx2:: symbols so
 * the equivalence suite links, but run the scalar mirrors.
 */
namespace avx2 {

void
axpy(double *y, double a, const double *x, size_t n)
{
    scalar::axpy(y, a, x, n);
}

void
add(double *acc, const double *x, size_t n)
{
    scalar::add(acc, x, n);
}

void
scale(double *x, double s, size_t n)
{
    scalar::scale(x, s, n);
}

void
div(double *x, double s, size_t n)
{
    scalar::div(x, s, n);
}

double
dotBlocked(const double *a, const double *b, size_t n)
{
    return scalar::dotBlocked(a, b, n);
}

void
dotRows4(const double *a, const double *b0, const double *b1,
         const double *b2, const double *b3, size_t n, double out[4])
{
    scalar::dotRows4(a, b0, b1, b2, b3, n, out);
}

double
sortedIntersectMinSum(const uint64_t *ka, const double *wa, size_t na,
                      const uint64_t *kb, const double *wb, size_t nb)
{
    return scalar::sortedIntersectMinSum(ka, wa, na, kb, wb, nb);
}

int64_t
dotI8(const int8_t *a, const int8_t *b, size_t n)
{
    return scalar::dotI8(a, b, n);
}

} // namespace avx2

#endif // SLEUTH_AVX2_BODIES

void
axpy(double *y, double a, const double *x, size_t n)
{
    if (active())
        avx2::axpy(y, a, x, n);
    else
        scalar::axpy(y, a, x, n);
}

void
add(double *acc, const double *x, size_t n)
{
    if (active())
        avx2::add(acc, x, n);
    else
        scalar::add(acc, x, n);
}

void
scale(double *x, double s, size_t n)
{
    if (active())
        avx2::scale(x, s, n);
    else
        scalar::scale(x, s, n);
}

void
div(double *x, double s, size_t n)
{
    if (active())
        avx2::div(x, s, n);
    else
        scalar::div(x, s, n);
}

double
dotBlocked(const double *a, const double *b, size_t n)
{
    return active() ? avx2::dotBlocked(a, b, n)
                    : scalar::dotBlocked(a, b, n);
}

void
dotRows4(const double *a, const double *b0, const double *b1,
         const double *b2, const double *b3, size_t n, double out[4])
{
    if (active())
        avx2::dotRows4(a, b0, b1, b2, b3, n, out);
    else
        scalar::dotRows4(a, b0, b1, b2, b3, n, out);
}

double
sortedIntersectMinSum(const uint64_t *ka, const double *wa, size_t na,
                      const uint64_t *kb, const double *wb, size_t nb)
{
    return active() ? avx2::sortedIntersectMinSum(ka, wa, na, kb, wb, nb)
                    : scalar::sortedIntersectMinSum(ka, wa, na, kb, wb,
                                                    nb);
}

int64_t
dotI8(const int8_t *a, const int8_t *b, size_t n)
{
    return active() ? avx2::dotI8(a, b, n) : scalar::dotI8(a, b, n);
}

} // namespace sleuth::simd
