#include "thread_pool.h"

#include "logging.h"

namespace sleuth::util {

size_t
ThreadPool::resolveThreads(size_t requested)
{
    if (requested > 0)
        return requested;
    size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t threads)
    : threads_(resolveThreads(threads))
{
    // Worker 0 is the calling thread; only 1..threads_-1 are spawned.
    workers_.reserve(threads_ - 1);
    for (size_t w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerMain(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

void
ThreadPool::runChunk(const std::function<void(size_t, size_t)> &fn,
                     size_t n, size_t worker, size_t threads)
{
    size_t begin = worker * n / threads;
    size_t end = (worker + 1) * n / threads;
    for (size_t i = begin; i < end; ++i)
        fn(i, worker);
}

void
ThreadPool::workerMain(size_t worker)
{
    uint64_t seen = 0;
    while (true) {
        const std::function<void(size_t, size_t)> *fn = nullptr;
        size_t n = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            start_cv_.wait(lock, [&] {
                return shutdown_ || job_generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = job_generation_;
            fn = job_fn_;
            n = job_n_;
        }
        runChunk(*fn, n, worker, threads_);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--job_pending_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t, size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads_ == 1 || n == 1) {
        // Inline fast path: no synchronization, the plain serial loop.
        for (size_t i = 0; i < n; ++i)
            fn(i, 0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        SLEUTH_ASSERT(job_pending_ == 0,
                      "parallelFor is not reentrant");
        job_fn_ = &fn;
        job_n_ = n;
        job_pending_ = threads_ - 1;
        ++job_generation_;
    }
    start_cv_.notify_all();
    // The calling thread works its own chunk as worker 0.
    runChunk(fn, n, /*worker=*/0, threads_);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job_pending_ == 0; });
    job_fn_ = nullptr;
}

} // namespace sleuth::util
