#include "thread_pool.h"

#include <atomic>

#include "logging.h"

namespace sleuth::util {

namespace {

std::atomic<uint64_t> gJobs{0};
std::atomic<uint64_t> gItems{0};
std::atomic<int64_t> gLivePools{0};
std::atomic<int64_t> gActiveJobs{0};

} // namespace

ThreadPool::Activity
ThreadPool::activity()
{
    Activity a;
    a.jobs = gJobs.load(std::memory_order_relaxed);
    a.items = gItems.load(std::memory_order_relaxed);
    a.livePools = gLivePools.load(std::memory_order_relaxed);
    a.activeJobs = gActiveJobs.load(std::memory_order_relaxed);
    return a;
}

size_t
ThreadPool::resolveThreads(size_t requested)
{
    if (requested > 0)
        return requested;
    size_t hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t threads)
    : threads_(resolveThreads(threads))
{
    // Worker 0 is the calling thread; only 1..threads_-1 are spawned.
    workers_.reserve(threads_ - 1);
    for (size_t w = 1; w < threads_; ++w)
        workers_.emplace_back([this, w] { workerMain(w); });
    gLivePools.fetch_add(1, std::memory_order_relaxed);
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_ = true;
    }
    start_cv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    gLivePools.fetch_sub(1, std::memory_order_relaxed);
}

void
ThreadPool::runChunk(const std::function<void(size_t, size_t)> &fn,
                     size_t n, size_t worker, size_t threads)
{
    size_t begin = worker * n / threads;
    size_t end = (worker + 1) * n / threads;
    for (size_t i = begin; i < end; ++i)
        fn(i, worker);
}

void
ThreadPool::workerMain(size_t worker)
{
    uint64_t seen = 0;
    while (true) {
        const std::function<void(size_t, size_t)> *fn = nullptr;
        size_t n = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            start_cv_.wait(lock, [&] {
                return shutdown_ || job_generation_ != seen;
            });
            if (shutdown_)
                return;
            seen = job_generation_;
            fn = job_fn_;
            n = job_n_;
        }
        runChunk(*fn, n, worker, threads_);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--job_pending_ == 0)
                done_cv_.notify_all();
        }
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t, size_t)> &fn)
{
    if (n == 0)
        return;
    gJobs.fetch_add(1, std::memory_order_relaxed);
    gItems.fetch_add(n, std::memory_order_relaxed);
    gActiveJobs.fetch_add(1, std::memory_order_relaxed);
    if (threads_ == 1 || n == 1) {
        // Inline fast path: no synchronization, the plain serial loop.
        for (size_t i = 0; i < n; ++i)
            fn(i, 0);
        gActiveJobs.fetch_sub(1, std::memory_order_relaxed);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        SLEUTH_ASSERT(job_pending_ == 0,
                      "parallelFor is not reentrant");
        job_fn_ = &fn;
        job_n_ = n;
        job_pending_ = threads_ - 1;
        ++job_generation_;
    }
    start_cv_.notify_all();
    // The calling thread works its own chunk as worker 0.
    runChunk(fn, n, /*worker=*/0, threads_);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return job_pending_ == 0; });
    job_fn_ = nullptr;
    gActiveJobs.fetch_sub(1, std::memory_order_relaxed);
}

} // namespace sleuth::util
