#pragma once

/**
 * @file
 * Plain-text table rendering used by the benchmark harnesses to print
 * paper-style result tables and series.
 */

#include <string>
#include <vector>

namespace sleuth::util {

/** Accumulates rows and renders an aligned ASCII table. */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header separator. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace sleuth::util
