#pragma once

/**
 * @file
 * A deterministic fixed-size thread pool for data-parallel loops.
 *
 * The storm pipeline fans the same computation over many independent
 * items (trace encodings, distance-matrix rows, per-cluster RCA). The
 * pool's single primitive, parallelFor(), partitions the index range
 * [0, n) into one contiguous static chunk per worker — no work
 * stealing, no dynamic scheduling — so the item-to-worker assignment
 * is a pure function of (n, worker count). Combined with callers that
 * preallocate one output slot per item, every run produces bitwise
 * identical results regardless of thread count or scheduling order
 * (the determinism contract DESIGN.md §3.8 documents).
 *
 * The calling thread participates as worker 0; a pool of size 1 runs
 * entirely inline and spawns no threads, so the serial path stays the
 * plain loop it always was.
 */

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sleuth::util {

/** Fixed-size pool executing static-partitioned parallel loops. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 = std::thread::hardware_concurrency
     *        (itself clamped to at least 1)
     */
    explicit ThreadPool(size_t threads = 0);

    /** Joins all workers (any in-flight parallelFor has completed). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Worker count (>= 1; includes the calling thread). */
    size_t size() const { return threads_; }

    /**
     * Invoke fn(index, worker) for every index in [0, n), partitioned
     * into size() contiguous chunks: worker w handles
     * [w*n/size(), (w+1)*n/size()). Blocks until every index has run.
     * `worker` in [0, size()) indexes per-worker scratch state. Not
     * reentrant: fn must not call parallelFor on the same pool.
     */
    void parallelFor(size_t n,
                     const std::function<void(size_t, size_t)> &fn);

    /** Resolve a requested thread count (0 = hardware concurrency). */
    static size_t resolveThreads(size_t requested);

    /**
     * Process-wide activity counters (plain relaxed atomics, always
     * on). util sits below the obs subsystem in the dependency order,
     * so obs surfaces these through callback gauges instead of the
     * pool recording metrics itself.
     */
    struct Activity
    {
        /** parallelFor invocations that dispatched to workers. */
        uint64_t jobs = 0;
        /** Total loop items dispatched across all jobs. */
        uint64_t items = 0;
        /** Pools currently alive. */
        int64_t livePools = 0;
        /** parallelFor calls currently executing. */
        int64_t activeJobs = 0;
    };

    static Activity activity();

  private:
    void workerMain(size_t worker);

    /** Chunk [begin, end) of [0, n) assigned to one worker. */
    static void runChunk(const std::function<void(size_t, size_t)> &fn,
                         size_t n, size_t worker, size_t threads);

    size_t threads_;
    std::vector<std::thread> workers_;

    std::mutex mu_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    /** Generation counter: bumped once per parallelFor call. */
    uint64_t job_generation_ = 0;
    /** Workers still running the current generation. */
    size_t job_pending_ = 0;
    size_t job_n_ = 0;
    const std::function<void(size_t, size_t)> *job_fn_ = nullptr;
    bool shutdown_ = false;
};

} // namespace sleuth::util
