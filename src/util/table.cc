#include "table.h"

#include <algorithm>
#include <cstdio>

#include "logging.h"

namespace sleuth::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SLEUTH_ASSERT(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    SLEUTH_ASSERT(cells.size() == headers_.size(),
                  "row width ", cells.size(), " != ", headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                line += "  ";
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
        }
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = render_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    out.append(total, '-');
    out.push_back('\n');
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace sleuth::util
