#include "rng.h"

#include <cmath>

namespace sleuth::util {

Rng
Rng::fork(uint64_t tag) const
{
    // SplitMix64-style mix of the original seed state and the tag gives
    // well-separated child streams without consuming parent state.
    std::mt19937_64 probe = engine_;
    uint64_t z = probe() ^ (tag + 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return Rng(z ^ (z >> 31));
}

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    SLEUTH_ASSERT(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
}

double
Rng::normal(double mean, double stddev)
{
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
}

double
Rng::logNormal(double mu, double sigma)
{
    std::lognormal_distribution<double> dist(mu, sigma);
    return dist(engine_);
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

int64_t
Rng::poisson(double mean)
{
    SLEUTH_ASSERT(mean >= 0.0);
    if (mean == 0.0)
        return 0;
    std::poisson_distribution<int64_t> dist(mean);
    return dist(engine_);
}

double
Rng::exponential(double rate)
{
    SLEUTH_ASSERT(rate > 0.0);
    std::exponential_distribution<double> dist(rate);
    return dist(engine_);
}

double
Rng::pareto(double xm, double alpha)
{
    SLEUTH_ASSERT(xm > 0.0 && alpha > 0.0);
    double u = uniform(std::numeric_limits<double>::min(), 1.0);
    return xm / std::pow(u, 1.0 / alpha);
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    SLEUTH_ASSERT(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
        SLEUTH_ASSERT(w >= 0.0);
        total += w;
    }
    SLEUTH_ASSERT(total > 0.0, "all weights are zero");
    double r = uniform(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

} // namespace sleuth::util
