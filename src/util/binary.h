#pragma once

/**
 * @file
 * Minimal binary codec for the durable store (DESIGN.md §3.15).
 *
 * Fixed-width little-endian integers, IEEE-754 doubles by bit pattern,
 * and length-prefixed strings. The encoding is deliberately boring:
 * every durable artifact (WAL frame payloads, snapshot sections) is a
 * flat byte string whose integrity is guarded by an outer CRC32C, so
 * the reader's only job is bounds checking — a read past the end flips
 * a sticky error flag instead of crashing, and callers check ok()
 * once at the end of a decode.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sleuth::util {

/** Append-only little-endian encoder over a growable byte string. */
class BinaryWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

    void
    u32(uint32_t v)
    {
        char b[4];
        std::memcpy(b, &v, 4);
        buf_.append(b, 4);
    }

    void
    u64(uint64_t v)
    {
        char b[8];
        std::memcpy(b, &v, 8);
        buf_.append(b, 8);
    }

    void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, 8);
        u64(bits);
    }

    /** u32 length prefix + raw bytes. */
    void
    str(std::string_view s)
    {
        u32(static_cast<uint32_t>(s.size()));
        buf_.append(s.data(), s.size());
    }

    /** Raw bytes, no prefix (caller carries the length elsewhere). */
    void bytes(std::string_view s) { buf_.append(s.data(), s.size()); }

    const std::string &buffer() const { return buf_; }
    std::string take() { return std::move(buf_); }
    size_t size() const { return buf_.size(); }

  private:
    std::string buf_;
};

/**
 * Bounds-checked little-endian decoder over a byte view. Any read past
 * the end sets a sticky error flag and returns a zero value; decoders
 * check ok() once after reading instead of guarding every field.
 */
class BinaryReader
{
  public:
    explicit BinaryReader(std::string_view data) : data_(data) {}

    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return static_cast<uint8_t>(data_[pos_++]);
    }

    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v;
        std::memcpy(&v, data_.data() + pos_, 4);
        pos_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v;
        std::memcpy(&v, data_.data() + pos_, 8);
        pos_ += 8;
        return v;
    }

    int64_t i64() { return static_cast<int64_t>(u64()); }

    double
    f64()
    {
        uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    std::string
    str()
    {
        uint32_t n = u32();
        if (!need(n))
            return "";
        std::string out(data_.substr(pos_, n));
        pos_ += n;
        return out;
    }

    /** Raw view of the next n bytes (empty + error when short). */
    std::string_view
    view(size_t n)
    {
        if (!need(n))
            return {};
        std::string_view out = data_.substr(pos_, n);
        pos_ += n;
        return out;
    }

    /** True while every read so far stayed in bounds. */
    bool ok() const { return ok_; }

    /** Bytes not yet consumed. */
    size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

  private:
    bool
    need(size_t n)
    {
        if (!ok_ || data_.size() - pos_ < n) {
            ok_ = false;
            return false;
        }
        return true;
    }

    std::string_view data_;
    size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace sleuth::util
