#include "logging.h"

#include <cstdio>
#include <cstdlib>

namespace sleuth::util::detail {

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

void
emitFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
emitPanic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

} // namespace sleuth::util::detail
