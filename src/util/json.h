#pragma once

/**
 * @file
 * Minimal JSON value type with a recursive-descent parser and a writer.
 *
 * Used for trace import/export in an OpenTelemetry-like shape and for
 * serializing synthetic-benchmark configurations and trained models.
 * Supports the JSON data model (null, bool, number, string, array,
 * object); numbers are stored as double.
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sleuth::util {

/** A JSON document node. */
class Json
{
  public:
    /** Kind discriminator. */
    enum class Type { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    /** Construct null. */
    Json() : type_(Type::Null) {}
    /** Construct a boolean. */
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    /** Construct a number. */
    Json(double n) : type_(Type::Number), num_(n) {}
    /** Construct a number from an integer. */
    Json(int n) : type_(Type::Number), num_(n) {}
    /** Construct a number from a 64-bit integer. */
    Json(int64_t n) : type_(Type::Number), num_(static_cast<double>(n)) {}
    /** Construct a number from an unsigned size. */
    Json(size_t n) : type_(Type::Number), num_(static_cast<double>(n)) {}
    /** Construct a string. */
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}
    /** Construct a string from a literal. */
    Json(const char *s) : type_(Type::String), str_(s) {}
    /** Construct an array. */
    Json(Array a) : type_(Type::Array), arr_(std::move(a)) {}
    /** Construct an object. */
    Json(Object o) : type_(Type::Object), obj_(std::move(o)) {}

    /** Make an empty array. */
    static Json array() { return Json(Array{}); }
    /** Make an empty object. */
    static Json object() { return Json(Object{}); }

    /** Kind of this node. */
    Type type() const { return type_; }
    /** True when the node is null. */
    bool isNull() const { return type_ == Type::Null; }

    /** Boolean payload (asserts on kind mismatch). */
    bool asBool() const;
    /** Numeric payload (asserts on kind mismatch). */
    double asNumber() const;
    /** Numeric payload truncated to int64. */
    int64_t asInt() const;
    /** String payload (asserts on kind mismatch). */
    const std::string &asString() const;
    /** Array payload (asserts on kind mismatch). */
    const Array &asArray() const;
    /** Mutable array payload. */
    Array &asArray();
    /** Object payload (asserts on kind mismatch). */
    const Object &asObject() const;
    /** Mutable object payload. */
    Object &asObject();

    /** Object member access (asserts when missing). */
    const Json &at(const std::string &key) const;
    /** True when this is an object containing the key. */
    bool has(const std::string &key) const;
    /** Insert or replace an object member. */
    void set(const std::string &key, Json value);
    /** Append to an array. */
    void push(Json value);

    /** Serialize compactly; indent > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

    /**
     * Parse a JSON document.
     *
     * @param text full document text
     * @param error receives a description when parsing fails
     * @return the parsed value, or null with non-empty *error on failure
     */
    static Json parse(const std::string &text, std::string *error = nullptr);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

} // namespace sleuth::util
