#include "stats.h"

#include <algorithm>
#include <cmath>

#include "logging.h"

namespace sleuth::util {

double
mean(const std::vector<double> &xs)
{
    SLEUTH_ASSERT(!xs.empty());
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
percentile(const std::vector<double> &xs, double p)
{
    SLEUTH_ASSERT(!xs.empty());
    SLEUTH_ASSERT(p >= 0.0 && p <= 100.0);
    std::vector<double> sorted(xs);
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1)
        return sorted[0];
    double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double
median(const std::vector<double> &xs)
{
    return percentile(xs, 50.0);
}

std::vector<std::pair<double, double>>
cdfPoints(std::vector<double> xs, size_t points)
{
    SLEUTH_ASSERT(!xs.empty() && points >= 2);
    std::sort(xs.begin(), xs.end());
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    for (size_t i = 0; i < points; ++i) {
        double q = static_cast<double>(i) / static_cast<double>(points - 1);
        size_t idx = static_cast<size_t>(
            q * static_cast<double>(xs.size() - 1) + 0.5);
        out.emplace_back(xs[idx], q);
    }
    return out;
}

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace sleuth::util
