#pragma once

/**
 * @file
 * Runtime-dispatched SIMD kernels for the pipeline hot loops.
 *
 * Every kernel here exists in two implementations: a scalar mirror and
 * an AVX2 body compiled with a function-level target attribute (so the
 * rest of the tree still builds for baseline x86-64). The dispatcher
 * picks AVX2 exactly once at startup when the kernels were compiled in
 * (-DSLEUTH_SIMD=ON, the default) and the CPU reports AVX2; a runtime
 * kill switch (forceScalar) lets tests and the campaign
 * online-differential invariant pin the scalar path without a rebuild.
 *
 * Determinism contract: for each kernel the scalar mirror performs the
 * same IEEE-754 operations in the same order as the AVX2 body's lane
 * structure (no FMA, no reassociated reductions beyond the documented
 * 4-lane split), so scalar and AVX2 results are bitwise identical for
 * all finite inputs. Callers that must stay bitwise-equal to *legacy*
 * single-accumulator loops (DistanceMatrix) only use the reassociating
 * kernels on inputs where every partial sum is exactly representable
 * (integer-valued weights below 2^53); see distance/trace_distance.cc.
 */

#include <cstddef>
#include <cstdint>

namespace sleuth::simd {

/** True when the AVX2 kernel bodies were compiled in (-DSLEUTH_SIMD=ON). */
bool compiledAvx2();

/** True when the running CPU supports AVX2 (independent of the build). */
bool cpuAvx2();

/** True when dispatch currently selects the AVX2 bodies. */
bool active();

/**
 * Force the scalar mirrors regardless of CPU/build support. Used by the
 * SIMD equivalence tests and the campaign SIMD-off differential leg;
 * not intended to be toggled while kernels run on other threads.
 */
void forceScalar(bool on);

/** "avx2" or "scalar" — whatever dispatch currently selects. */
const char *activeIsaName();

/** RAII guard that forces the scalar mirrors for its lifetime. */
class ScopedForceScalar
{
  public:
    ScopedForceScalar() { forceScalar(true); }
    ~ScopedForceScalar() { forceScalar(false); }
    ScopedForceScalar(const ScopedForceScalar &) = delete;
    ScopedForceScalar &operator=(const ScopedForceScalar &) = delete;
};

/*
 * Kernels. Each dispatches internally; the scalar:: and avx2::
 * namespaces expose both implementations directly for the equivalence
 * suite (when the AVX2 bodies are compiled out, the avx2:: symbols
 * forward to the scalar mirrors so links never break).
 */

/** y[i] += a * x[i]. Elementwise: bitwise-stable under any dispatch. */
void axpy(double *y, double a, const double *x, size_t n);

/** acc[i] += x[i]. Elementwise. */
void add(double *acc, const double *x, size_t n);

/** x[i] *= s. Elementwise. */
void scale(double *x, double s, size_t n);

/** x[i] /= s. Elementwise (exact IEEE division per element). */
void div(double *x, double s, size_t n);

/**
 * Dot product with the documented 4-lane accumulation order:
 * lane l sums a[4k+l]*b[4k+l], the return value is
 * ((l0+l1)+(l2+l3)) + sequential-tail. NOT bitwise-equal to a plain
 * sequential dot; used where no legacy order is pinned (cosine).
 */
double dotBlocked(const double *a, const double *b, size_t n);

/**
 * Four independent sequential dot products sharing one pass over `a`:
 * out[l] = sum_t a[t]*bl[t] with strictly ascending t per output.
 * Bitwise-equal to four separate naive dots (matmulTransposedB).
 */
void dotRows4(const double *a, const double *b0, const double *b1,
              const double *b2, const double *b3, size_t n,
              double out[4]);

/**
 * Sum of min(wa, wb) over the intersection of two strictly-ascending
 * unique key arrays (the weighted-Jaccard numerator). Accumulation
 * order: 4-key equal blocks add lanewise into four accumulators,
 * unpaired singles into a fifth; result is
 * ((l0+l1)+(l2+l3)) + singles. min is (a<b)?a:b (MINPD semantics).
 */
double sortedIntersectMinSum(const uint64_t *ka, const double *wa,
                             size_t na, const uint64_t *kb,
                             const double *wb, size_t nb);

/** Integer dot product of two int8 vectors (exact in any order). */
int64_t dotI8(const int8_t *a, const int8_t *b, size_t n);

namespace scalar {
void axpy(double *y, double a, const double *x, size_t n);
void add(double *acc, const double *x, size_t n);
void scale(double *x, double s, size_t n);
void div(double *x, double s, size_t n);
double dotBlocked(const double *a, const double *b, size_t n);
void dotRows4(const double *a, const double *b0, const double *b1,
              const double *b2, const double *b3, size_t n,
              double out[4]);
double sortedIntersectMinSum(const uint64_t *ka, const double *wa,
                             size_t na, const uint64_t *kb,
                             const double *wb, size_t nb);
int64_t dotI8(const int8_t *a, const int8_t *b, size_t n);
} // namespace scalar

namespace avx2 {
void axpy(double *y, double a, const double *x, size_t n);
void add(double *acc, const double *x, size_t n);
void scale(double *x, double s, size_t n);
void div(double *x, double s, size_t n);
double dotBlocked(const double *a, const double *b, size_t n);
void dotRows4(const double *a, const double *b0, const double *b1,
              const double *b2, const double *b3, size_t n,
              double out[4]);
double sortedIntersectMinSum(const uint64_t *ka, const double *wa,
                             size_t na, const uint64_t *kb,
                             const double *wb, size_t nb);
int64_t dotI8(const int8_t *a, const int8_t *b, size_t n);
} // namespace avx2

} // namespace sleuth::simd
