#pragma once

/**
 * @file
 * String helpers shared by the text-preprocessing and reporting code.
 */

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sleuth::util {

/**
 * FNV-1a over a byte view. The online layer uses this one hash for
 * ingest-shard routing, the deterministic shed `sample` policy, and
 * the incident normal-trace sample: an explicit hash keeps those
 * decisions identical across standard libraries, and a string_view
 * signature means call sites never materialize a temporary string.
 * The hot path computes it once per span event and reuses the value.
 */
inline uint64_t
fnv1a(std::string_view s)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

/** Split a string on a single-character delimiter (keeps empty pieces). */
std::vector<std::string> split(const std::string &s, char delim);

/** Join pieces with a delimiter string. */
std::string join(const std::vector<std::string> &pieces,
                 const std::string &delim);

/** Lower-case an ASCII string. */
std::string toLower(std::string s);

/**
 * Split camelCase / PascalCase / snake_case / kebab-case identifiers into
 * lower-case word tokens (e.g. "GetUserById" -> {"get","user","by","id"}).
 */
std::vector<std::string> splitIdentifier(const std::string &s);

/** True when the token looks like a hex/numeric ID of >= minDigits chars. */
bool looksLikeHexId(const std::string &token, size_t min_digits = 6);

/** True when the string starts with the given prefix. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Render a double with fixed precision. */
std::string formatDouble(double v, int precision = 2);

} // namespace sleuth::util
