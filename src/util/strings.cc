#include "strings.h"

#include <cctype>
#include <sstream>

namespace sleuth::util {

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
join(const std::vector<std::string> &pieces, const std::string &delim)
{
    std::string out;
    for (size_t i = 0; i < pieces.size(); ++i) {
        if (i)
            out += delim;
        out += pieces[i];
    }
    return out;
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

std::vector<std::string>
splitIdentifier(const std::string &s)
{
    std::vector<std::string> words;
    std::string cur;
    auto flush = [&]() {
        if (!cur.empty()) {
            words.push_back(toLower(cur));
            cur.clear();
        }
    };
    for (size_t i = 0; i < s.size(); ++i) {
        unsigned char c = static_cast<unsigned char>(s[i]);
        if (!std::isalnum(c)) {
            flush();
            continue;
        }
        if (std::isupper(c)) {
            // Start a new word at a lower->upper boundary, or at the last
            // capital of an acronym run (e.g. "HTTPServer" -> http server).
            bool prev_lower =
                !cur.empty() &&
                std::islower(static_cast<unsigned char>(cur.back()));
            bool next_lower =
                i + 1 < s.size() &&
                std::islower(static_cast<unsigned char>(s[i + 1]));
            if (prev_lower || (next_lower && !cur.empty()))
                flush();
        } else if (std::isdigit(c)) {
            bool prev_digit =
                !cur.empty() &&
                std::isdigit(static_cast<unsigned char>(cur.back()));
            if (!cur.empty() && !prev_digit)
                flush();
        } else {
            bool prev_digit =
                !cur.empty() &&
                std::isdigit(static_cast<unsigned char>(cur.back()));
            if (prev_digit)
                flush();
        }
        cur.push_back(static_cast<char>(c));
    }
    flush();
    return words;
}

bool
looksLikeHexId(const std::string &token, size_t min_digits)
{
    if (token.size() < min_digits)
        return false;
    bool has_digit = false;
    for (char ch : token) {
        unsigned char c = static_cast<unsigned char>(ch);
        if (std::isdigit(c))
            has_digit = true;
        else if (!std::isxdigit(c))
            return false;
    }
    return has_digit;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
formatDouble(double v, int precision)
{
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(precision);
    os << v;
    return os.str();
}

} // namespace sleuth::util
