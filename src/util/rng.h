#pragma once

/**
 * @file
 * Deterministic seeded random number generation.
 *
 * All stochastic components of the library draw randomness through Rng so
 * that every experiment is reproducible from a single seed. Rng also
 * provides the heavy-tailed distributions (log-normal, Pareto) used to
 * model microservice latency.
 */

#include <cstdint>
#include <random>
#include <vector>

#include "logging.h"

namespace sleuth::util {

/** A seeded pseudo-random generator with distribution helpers. */
class Rng
{
  public:
    /** Construct with an explicit seed; identical seeds replay streams. */
    explicit Rng(uint64_t seed = 0x5eu) : engine_(seed) {}

    /** Derive an independent child stream (stable for a given tag). */
    Rng fork(uint64_t tag) const;

    /** Uniform double in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Normal with the given mean and standard deviation. */
    double normal(double mean = 0.0, double stddev = 1.0);

    /** Log-normal with the given parameters of the underlying normal. */
    double logNormal(double mu, double sigma);

    /** Bernoulli trial with probability p of true. */
    bool bernoulli(double p);

    /** Poisson-distributed count with the given mean. */
    int64_t poisson(double mean);

    /** Exponential with the given rate. */
    double exponential(double rate);

    /** Pareto with scale x_m and shape alpha (heavy tail). */
    double pareto(double xm, double alpha);

    /** Pick an index in [0, weights.size()) proportionally to weights. */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    choice(const std::vector<T> &items)
    {
        SLEUTH_ASSERT(!items.empty());
        return items[static_cast<size_t>(
            uniformInt(0, static_cast<int64_t>(items.size()) - 1))];
    }

    /** Fisher-Yates shuffle in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            size_t j = static_cast<size_t>(
                uniformInt(0, static_cast<int64_t>(i) - 1));
            std::swap(items[i - 1], items[j]);
        }
    }

    /** Expose the engine for <random> interoperability. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace sleuth::util
