#pragma once

/**
 * @file
 * Embedded trace storage engine (paper §4).
 *
 * The production system stores terabytes of traces in a distributed
 * engine and offloads feature engineering to SQL-like parallel queries
 * with user-defined operators. This embedded equivalent provides the
 * same interface shape at library scale: indexed predicate queries
 * over stored traces plus a typed operator pipeline (filter / map /
 * group / aggregate) that the feature-engineering code runs close to
 * the data.
 *
 * Records are held columnar (trace::ColumnarTrace, DESIGN.md §3.12):
 * the store owns one StringInterner shared by every record, span
 * vocabulary fields are u32 ids, and the legacy row-oriented
 * trace::Trace is materialized on demand via Record::trace().
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/columnar.h"
#include "trace/trace.h"
#include "util/binary.h"

namespace sleuth::storage {

/** One stored trace with its workload metadata. */
struct Record
{
    trace::ColumnarTrace columns;
    /** Latency SLO the trace is held against (0 = unknown). */
    int64_t sloUs = 0;
    /** Operation flow that produced the trace (-1 = unknown). */
    int flowIndex = -1;
    /** Store-assigned id (monotonic admission order; set by insert). */
    size_t id = 0;
    /**
     * util::fnv1a of the trace id, computed once by insert(). The
     * online incident snapshot's deterministic bottom-k-by-hash
     * normal sample sorts on it — cached here so the sample sort
     * never re-hashes a record per comparison.
     */
    uint64_t traceIdHash = 0;

    /** Trace id without materializing. */
    const std::string &traceId() const { return columns.traceId(); }

    /** Span count without materializing. */
    size_t spanCount() const { return columns.spanCount(); }

    /** Materialize the legacy row-oriented trace (exact round trip). */
    trace::Trace trace() const { return columns.toTrace(); }

    /** Root span start timestamp (used by the time index). */
    int64_t startUs() const { return columns.rootStartUs(); }

    /** True when the trace breaches its SLO or errors at the root. */
    bool anomalous() const
    {
        if (sloUs > 0 && columns.rootDurationUs() > sloUs)
            return true;
        return columns.rootError();
    }
};

/** Declarative filter for TraceStore::query(). */
struct Query
{
    /** Half-open time window on root start (us); unset = unbounded. */
    std::optional<int64_t> minStartUs;
    std::optional<int64_t> maxStartUs;
    /** Only traces touching this service. */
    std::optional<std::string> service;
    /** Only traces produced by this operation flow. */
    std::optional<int> flowIndex;
    /** Only SLO-violating / erroring traces. */
    bool onlyAnomalous = false;
    /** Cap on the number of results (0 = unlimited). */
    size_t limit = 0;
};

/**
 * Retention policy bounding the store's memory. 0 disables a bound.
 * Enforced on insert: the oldest records (by root start time, then by
 * id) are evicted until the store fits the budget again; the record
 * being inserted is never evicted, so a single oversized trace is
 * admitted rather than thrashing.
 */
struct RetentionConfig
{
    /** Total span budget across all stored records. */
    size_t maxSpans = 0;
    /** Record-count budget. */
    size_t maxRecords = 0;
};

/** A typed, chainable in-memory operator pipeline. */
template <typename T>
class Dataset
{
  public:
    Dataset() = default;
    explicit Dataset(std::vector<T> items) : items_(std::move(items)) {}

    /** Keep items satisfying the predicate. */
    Dataset<T>
    filter(const std::function<bool(const T &)> &pred) const
    {
        std::vector<T> out;
        for (const T &x : items_)
            if (pred(x))
                out.push_back(x);
        return Dataset<T>(std::move(out));
    }

    /** Transform every item. */
    template <typename U>
    Dataset<U>
    map(const std::function<U(const T &)> &fn) const
    {
        std::vector<U> out;
        out.reserve(items_.size());
        for (const T &x : items_)
            out.push_back(fn(x));
        return Dataset<U>(std::move(out));
    }

    /** Group items under a key. */
    template <typename K>
    std::map<K, std::vector<T>>
    groupBy(const std::function<K(const T &)> &key) const
    {
        std::map<K, std::vector<T>> out;
        for (const T &x : items_)
            out[key(x)].push_back(x);
        return out;
    }

    /** Left fold. */
    template <typename A>
    A
    aggregate(A init, const std::function<A(A, const T &)> &fn) const
    {
        A acc = std::move(init);
        for (const T &x : items_)
            acc = fn(std::move(acc), x);
        return acc;
    }

    /** Materialized items. */
    const std::vector<T> &items() const { return items_; }

    /** Item count. */
    size_t size() const { return items_.size(); }

  private:
    std::vector<T> items_;
};

/** Cumulative eviction counters of a TraceStore. */
struct EvictionStats
{
    size_t records = 0;
    size_t spans = 0;
};

/** The embedded trace store. */
class TraceStore
{
  public:
    TraceStore();

    /** Construct with a retention policy active from the start. */
    explicit TraceStore(RetentionConfig retention);

    /** Install or replace the retention policy (applies immediately). */
    void setRetention(RetentionConfig retention);

    /**
     * Encode a trace into the store's columnar layout and insert it;
     * returns the record id (ids are never reused).
     */
    size_t insert(trace::Trace t, int64_t sloUs = 0,
                  int flowIndex = -1);

    /**
     * Re-admit a record under its original id during durable-log
     * replay (DESIGN.md §3.15). The columns must already be bound to
     * this store's interner. Retention is NOT enforced: replay honors
     * the retention the live run actually performed by applying the
     * logged Eviction records through evictById() instead, which is
     * what makes recovered state exact rather than re-derived.
     */
    void restoreRecord(trace::ColumnarTrace columns, int64_t sloUs,
                       int flowIndex, size_t id);

    /**
     * Evict one live record by id (durable-log eviction replay).
     * Updates every index and the cumulative eviction counters exactly
     * as live retention enforcement does.
     */
    void evictById(size_t id);

    /**
     * When enabled, every eviction's record id is also appended to an
     * internal journal drained by takeRecentEvictions() — the hook the
     * serving layer uses to emit one summarized WAL record per poll.
     */
    void trackEvictions(bool enabled) { track_evictions_ = enabled; }

    /** Drain the eviction journal (ids in eviction order). */
    std::vector<size_t> takeRecentEvictions();

    /** Number of live (non-evicted) records. */
    size_t size() const { return records_.size(); }

    /** True when the id names a live record. */
    bool contains(size_t id) const { return records_.count(id) > 0; }

    /** Record access by id; the id must be live. */
    const Record &at(size_t id) const;

    /** Indexed declarative query; results ordered by start time. */
    std::vector<const Record *> query(const Query &q) const;

    /** Full-scan operator pipeline over record pointers. */
    Dataset<const Record *> scan() const;

    /** Total spans stored (capacity accounting). */
    size_t totalSpans() const { return total_spans_; }

    /** Cumulative eviction counters. */
    const EvictionStats &evictions() const { return evictions_; }

    /** The vocabulary interner shared by every stored record. */
    const std::shared_ptr<trace::StringInterner> &interner() const
    {
        return interner_;
    }

    /**
     * Estimated resident bytes: columnar records + interner + index
     * structures. Benchmarks divide by totalSpans() to report
     * memory_bytes_per_span.
     */
    size_t memoryBytes() const;

    /**
     * Serialize the full store state (DESIGN.md §3.15): id allocator,
     * eviction counters, the complete interner vocabulary in id order,
     * and every record's columns in id order. decodeState() on an
     * empty store is an exact inverse; the retention policy is not
     * part of the state (the owner re-applies its configuration).
     */
    void encodeState(util::BinaryWriter &w) const;

    /** Inverse of encodeState() into an empty store; false on short
        or inconsistent input. */
    bool decodeState(util::BinaryReader &r);

    /**
     * Exact content fingerprint: util::fnv1a over the encodeState()
     * byte image. Covers record ids, columns, vocabulary, the id
     * allocator, and eviction counters — two stores fingerprint equal
     * iff a recovery reproduced the live store bitwise.
     */
    uint64_t contentFingerprint() const;

  private:
    /** Evict oldest records until the retention budget fits. */
    void enforceRetention(size_t protected_id);

    void evictOne(size_t id);

    /** Index + admit a fully-formed record (shared insert/restore). */
    void admitRecord(Record record);

    /** id -> record; a map so eviction can erase without moving ids. */
    std::map<size_t, Record> records_;
    /** start-time index: (startUs, record id), kept sorted. */
    std::multimap<int64_t, size_t> by_start_;
    /** interned service id -> record ids. */
    std::map<uint32_t, std::vector<size_t>> by_service_;
    std::shared_ptr<trace::StringInterner> interner_;
    size_t total_spans_ = 0;
    size_t next_id_ = 0;
    RetentionConfig retention_;
    EvictionStats evictions_;
    /** Eviction journal for the durable layer (see trackEvictions). */
    bool track_evictions_ = false;
    std::vector<size_t> recent_evictions_;
};

} // namespace sleuth::storage
