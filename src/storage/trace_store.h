#pragma once

/**
 * @file
 * Embedded trace storage engine (paper §4).
 *
 * The production system stores terabytes of traces in a distributed
 * engine and offloads feature engineering to SQL-like parallel queries
 * with user-defined operators. This embedded equivalent provides the
 * same interface shape at library scale: indexed predicate queries
 * over stored traces plus a typed operator pipeline (filter / map /
 * group / aggregate) that the feature-engineering code runs close to
 * the data.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace sleuth::storage {

/** One stored trace with its workload metadata. */
struct Record
{
    trace::Trace trace;
    /** Latency SLO the trace is held against (0 = unknown). */
    int64_t sloUs = 0;
    /** Operation flow that produced the trace (-1 = unknown). */
    int flowIndex = -1;

    /** Root span start timestamp (used by the time index). */
    int64_t startUs() const;

    /** True when the trace breaches its SLO or errors at the root. */
    bool anomalous() const;
};

/** Declarative filter for TraceStore::query(). */
struct Query
{
    /** Half-open time window on root start (us); unset = unbounded. */
    std::optional<int64_t> minStartUs;
    std::optional<int64_t> maxStartUs;
    /** Only traces touching this service. */
    std::optional<std::string> service;
    /** Only SLO-violating / erroring traces. */
    bool onlyAnomalous = false;
    /** Cap on the number of results (0 = unlimited). */
    size_t limit = 0;
};

/** A typed, chainable in-memory operator pipeline. */
template <typename T>
class Dataset
{
  public:
    Dataset() = default;
    explicit Dataset(std::vector<T> items) : items_(std::move(items)) {}

    /** Keep items satisfying the predicate. */
    Dataset<T>
    filter(const std::function<bool(const T &)> &pred) const
    {
        std::vector<T> out;
        for (const T &x : items_)
            if (pred(x))
                out.push_back(x);
        return Dataset<T>(std::move(out));
    }

    /** Transform every item. */
    template <typename U>
    Dataset<U>
    map(const std::function<U(const T &)> &fn) const
    {
        std::vector<U> out;
        out.reserve(items_.size());
        for (const T &x : items_)
            out.push_back(fn(x));
        return Dataset<U>(std::move(out));
    }

    /** Group items under a key. */
    template <typename K>
    std::map<K, std::vector<T>>
    groupBy(const std::function<K(const T &)> &key) const
    {
        std::map<K, std::vector<T>> out;
        for (const T &x : items_)
            out[key(x)].push_back(x);
        return out;
    }

    /** Left fold. */
    template <typename A>
    A
    aggregate(A init, const std::function<A(A, const T &)> &fn) const
    {
        A acc = std::move(init);
        for (const T &x : items_)
            acc = fn(std::move(acc), x);
        return acc;
    }

    /** Materialized items. */
    const std::vector<T> &items() const { return items_; }

    /** Item count. */
    size_t size() const { return items_.size(); }

  private:
    std::vector<T> items_;
};

/** The embedded trace store. */
class TraceStore
{
  public:
    /** Insert a record; returns its id. */
    size_t insert(Record record);

    /** Number of stored records. */
    size_t size() const { return records_.size(); }

    /** Record access by id. */
    const Record &at(size_t id) const;

    /** Indexed declarative query; results ordered by start time. */
    std::vector<const Record *> query(const Query &q) const;

    /** Full-scan operator pipeline over record pointers. */
    Dataset<const Record *> scan() const;

    /** Total spans stored (capacity accounting). */
    size_t totalSpans() const { return total_spans_; }

  private:
    std::vector<Record> records_;
    /** start-time index: (startUs, record id), kept sorted. */
    std::multimap<int64_t, size_t> by_start_;
    /** service name -> record ids. */
    std::map<std::string, std::vector<size_t>> by_service_;
    size_t total_spans_ = 0;
};

} // namespace sleuth::storage
