#include "trace_store.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/strings.h"

namespace sleuth::storage {

TraceStore::TraceStore()
    : interner_(std::make_shared<trace::StringInterner>())
{
}

TraceStore::TraceStore(RetentionConfig retention)
    : interner_(std::make_shared<trace::StringInterner>()),
      retention_(retention)
{
}

void
TraceStore::setRetention(RetentionConfig retention)
{
    retention_ = retention;
    // Apply immediately but never evict the newest record: a budget
    // smaller than one trace otherwise empties the store.
    if (!records_.empty())
        enforceRetention(records_.rbegin()->first);
}

size_t
TraceStore::insert(trace::Trace t, int64_t sloUs, int flowIndex)
{
    Record record;
    record.columns = trace::ColumnarTrace(t, interner_);
    record.sloUs = sloUs;
    record.flowIndex = flowIndex;
    size_t id = next_id_++;
    record.id = id;
    static obs::Counter &inserted = obs::counter(
        "sleuth_store_inserted_records_total",
        "Trace records inserted into trace stores");
    inserted.add();
    admitRecord(std::move(record));
    enforceRetention(id);
    return id;
}

void
TraceStore::restoreRecord(trace::ColumnarTrace columns, int64_t sloUs,
                          int flowIndex, size_t id)
{
    SLEUTH_ASSERT(columns.internerPtr() == interner_,
                  "restored columns bound to a foreign interner");
    SLEUTH_ASSERT(records_.count(id) == 0,
                  "restoring an id that is already live");
    Record record;
    record.columns = std::move(columns);
    record.sloUs = sloUs;
    record.flowIndex = flowIndex;
    record.id = id;
    static obs::Counter &restored = obs::counter(
        "sleuth_store_restored_records_total",
        "Trace records re-admitted during durable-log replay");
    restored.add();
    admitRecord(std::move(record));
    if (id >= next_id_)
        next_id_ = id + 1;
}

void
TraceStore::admitRecord(Record record)
{
    size_t id = record.id;
    record.traceIdHash = util::fnv1a(record.traceId());
    by_start_.emplace(record.startUs(), id);
    std::set<uint32_t> services;
    const trace::SpanColumns &cols = record.columns.columns();
    for (size_t i = 0; i < cols.size(); ++i)
        services.insert(cols.serviceId(i));
    for (uint32_t svc : services)
        by_service_[svc].push_back(id);
    total_spans_ += record.spanCount();
    records_.emplace(id, std::move(record));
}

void
TraceStore::evictById(size_t id)
{
    SLEUTH_ASSERT(records_.count(id) > 0,
                  "evictById on an id that is not live");
    evictOne(id);
}

std::vector<size_t>
TraceStore::takeRecentEvictions()
{
    std::vector<size_t> out;
    out.swap(recent_evictions_);
    return out;
}

void
TraceStore::enforceRetention(size_t protected_id)
{
    auto over = [&] {
        if (retention_.maxSpans > 0 &&
            total_spans_ > retention_.maxSpans)
            return true;
        if (retention_.maxRecords > 0 &&
            records_.size() > retention_.maxRecords)
            return true;
        return false;
    };
    // Oldest-first by (startUs, id): the multimap keeps equal start
    // times in insertion order, so the scan is deterministic.
    while (over() && records_.size() > 1) {
        auto it = by_start_.begin();
        if (it->second == protected_id) {
            auto next = std::next(it);
            if (next == by_start_.end())
                break;
            it = next;
        }
        evictOne(it->second);
    }
}

void
TraceStore::evictOne(size_t id)
{
    auto rec_it = records_.find(id);
    SLEUTH_ASSERT(rec_it != records_.end(), "evicting unknown record");
    const Record &rec = rec_it->second;

    int64_t start = rec.startUs();
    auto [lo, hi] = by_start_.equal_range(start);
    for (auto it = lo; it != hi; ++it) {
        if (it->second == id) {
            by_start_.erase(it);
            break;
        }
    }
    std::set<uint32_t> services;
    const trace::SpanColumns &cols = rec.columns.columns();
    for (size_t i = 0; i < cols.size(); ++i)
        services.insert(cols.serviceId(i));
    for (uint32_t svc : services) {
        auto svc_it = by_service_.find(svc);
        if (svc_it == by_service_.end())
            continue;
        std::vector<size_t> &ids = svc_it->second;
        ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
        if (ids.empty())
            by_service_.erase(svc_it);
    }
    total_spans_ -= rec.spanCount();
    ++evictions_.records;
    evictions_.spans += rec.spanCount();
    static obs::Counter &records = obs::counter(
        "sleuth_store_evicted_records_total",
        "Trace records evicted by retention enforcement");
    static obs::Counter &spans = obs::counter(
        "sleuth_store_evicted_spans_total",
        "Spans evicted by retention enforcement");
    records.add();
    spans.add(rec.spanCount());
    if (track_evictions_)
        recent_evictions_.push_back(id);
    records_.erase(rec_it);
}

const Record &
TraceStore::at(size_t id) const
{
    auto it = records_.find(id);
    SLEUTH_ASSERT(it != records_.end(),
                  "record id out of range or evicted");
    return it->second;
}

std::vector<const Record *>
TraceStore::query(const Query &q) const
{
    // Choose the narrower index: service postings when a service is
    // given, otherwise the time index. An un-interned service name
    // cannot match any stored span.
    std::vector<const Record *> out;
    std::optional<uint32_t> service_id;
    if (q.service) {
        service_id = interner_->find(*q.service);
        if (!service_id)
            return out;
    }
    auto matches = [&](const Record &r) {
        if (q.minStartUs && r.startUs() < *q.minStartUs)
            return false;
        if (q.maxStartUs && r.startUs() >= *q.maxStartUs)
            return false;
        if (q.flowIndex && r.flowIndex != *q.flowIndex)
            return false;
        if (q.onlyAnomalous && !r.anomalous())
            return false;
        if (service_id && !r.columns.touchesService(*service_id))
            return false;
        return true;
    };

    if (service_id) {
        auto it = by_service_.find(*service_id);
        if (it == by_service_.end())
            return out;
        std::vector<size_t> ids = it->second;
        std::sort(ids.begin(), ids.end(), [&](size_t a, size_t b) {
            int64_t sa = records_.at(a).startUs();
            int64_t sb = records_.at(b).startUs();
            if (sa != sb)
                return sa < sb;
            return a < b;
        });
        for (size_t id : ids) {
            const Record &r = records_.at(id);
            if (matches(r)) {
                out.push_back(&r);
                if (q.limit && out.size() >= q.limit)
                    break;
            }
        }
        return out;
    }

    auto lo = q.minStartUs ? by_start_.lower_bound(*q.minStartUs)
                           : by_start_.begin();
    auto hi = q.maxStartUs ? by_start_.lower_bound(*q.maxStartUs)
                           : by_start_.end();
    for (auto it = lo; it != hi; ++it) {
        const Record &r = records_.at(it->second);
        if (matches(r)) {
            out.push_back(&r);
            if (q.limit && out.size() >= q.limit)
                break;
        }
    }
    return out;
}

Dataset<const Record *>
TraceStore::scan() const
{
    std::vector<const Record *> all;
    all.reserve(records_.size());
    for (const auto &[id, r] : records_) {
        (void)id;
        all.push_back(&r);
    }
    return Dataset<const Record *>(std::move(all));
}

size_t
TraceStore::memoryBytes() const
{
    // Estimate: per-record columnar payload plus red-black tree node
    // overhead for the three indexes (~3 pointers + color per node).
    constexpr size_t kMapNodeOverhead = 4 * sizeof(void *);
    size_t bytes = sizeof(*this) + interner_->memoryBytes();
    for (const auto &[id, r] : records_) {
        (void)id;
        bytes += kMapNodeOverhead + sizeof(size_t) + sizeof(Record) -
                 sizeof(trace::ColumnarTrace) + r.columns.memoryBytes();
    }
    bytes += by_start_.size() *
             (kMapNodeOverhead + sizeof(int64_t) + sizeof(size_t));
    for (const auto &[svc, ids] : by_service_) {
        (void)svc;
        bytes += kMapNodeOverhead + sizeof(uint32_t) +
                 sizeof(std::vector<size_t>) +
                 ids.capacity() * sizeof(size_t);
    }
    return bytes;
}

void
TraceStore::encodeState(util::BinaryWriter &w) const
{
    w.u64(next_id_);
    w.u64(evictions_.records);
    w.u64(evictions_.spans);

    // Full vocabulary in id order: re-interning it in order on an
    // empty interner reproduces every id, keeping the raw u32 column
    // encodings below valid.
    std::vector<std::string> names = interner_->namesFrom(0);
    w.u32(static_cast<uint32_t>(names.size()));
    for (const std::string &s : names)
        w.str(s);

    w.u32(static_cast<uint32_t>(records_.size()));
    for (const auto &[id, rec] : records_) {
        w.u64(id);
        w.i64(rec.sloUs);
        w.i64(rec.flowIndex);
        rec.columns.encode(w);
    }
}

bool
TraceStore::decodeState(util::BinaryReader &r)
{
    SLEUTH_ASSERT(records_.empty() && interner_->size() == 0,
                  "decodeState requires an empty store");
    uint64_t nextId = r.u64();
    EvictionStats evictions;
    evictions.records = r.u64();
    evictions.spans = r.u64();

    uint32_t nNames = r.u32();
    for (uint32_t i = 0; i < nNames && r.ok(); ++i) {
        std::string s = r.str();
        uint32_t id = interner_->intern(s);
        if (id != i)
            return false;
    }
    if (!r.ok())
        return false;

    uint32_t nRecords = r.u32();
    for (uint32_t i = 0; i < nRecords && r.ok(); ++i) {
        size_t id = r.u64();
        int64_t sloUs = r.i64();
        int flowIndex = static_cast<int>(r.i64());
        trace::ColumnarTrace columns;
        if (!columns.decode(r, interner_))
            return false;
        if (records_.count(id) > 0)
            return false;
        restoreRecord(std::move(columns), sloUs, flowIndex, id);
    }
    if (!r.ok())
        return false;
    next_id_ = nextId;
    evictions_ = evictions;
    return true;
}

uint64_t
TraceStore::contentFingerprint() const
{
    util::BinaryWriter w;
    encodeState(w);
    return util::fnv1a(w.buffer());
}

} // namespace sleuth::storage
