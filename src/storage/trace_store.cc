#include "trace_store.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace sleuth::storage {

int64_t
Record::startUs() const
{
    for (const trace::Span &s : trace.spans)
        if (s.parentSpanId.empty())
            return s.startUs;
    return 0;
}

bool
Record::anomalous() const
{
    if (sloUs > 0 && trace.rootDurationUs() > sloUs)
        return true;
    for (const trace::Span &s : trace.spans)
        if (s.parentSpanId.empty())
            return s.hasError();
    return false;
}

size_t
TraceStore::insert(Record record)
{
    size_t id = records_.size();
    by_start_.emplace(record.startUs(), id);
    std::set<std::string> services;
    for (const trace::Span &s : record.trace.spans)
        services.insert(s.service);
    for (const std::string &svc : services)
        by_service_[svc].push_back(id);
    total_spans_ += record.trace.spans.size();
    records_.push_back(std::move(record));
    return id;
}

const Record &
TraceStore::at(size_t id) const
{
    SLEUTH_ASSERT(id < records_.size(), "record id out of range");
    return records_[id];
}

std::vector<const Record *>
TraceStore::query(const Query &q) const
{
    // Choose the narrower index: service postings when a service is
    // given, otherwise the time index.
    std::vector<const Record *> out;
    auto matches = [&](const Record &r) {
        if (q.minStartUs && r.startUs() < *q.minStartUs)
            return false;
        if (q.maxStartUs && r.startUs() >= *q.maxStartUs)
            return false;
        if (q.onlyAnomalous && !r.anomalous())
            return false;
        if (q.service) {
            bool found = false;
            for (const trace::Span &s : r.trace.spans)
                if (s.service == *q.service) {
                    found = true;
                    break;
                }
            if (!found)
                return false;
        }
        return true;
    };

    if (q.service) {
        auto it = by_service_.find(*q.service);
        if (it == by_service_.end())
            return out;
        std::vector<size_t> ids = it->second;
        std::sort(ids.begin(), ids.end(), [&](size_t a, size_t b) {
            return records_[a].startUs() < records_[b].startUs();
        });
        for (size_t id : ids) {
            if (matches(records_[id])) {
                out.push_back(&records_[id]);
                if (q.limit && out.size() >= q.limit)
                    break;
            }
        }
        return out;
    }

    auto lo = q.minStartUs ? by_start_.lower_bound(*q.minStartUs)
                           : by_start_.begin();
    auto hi = q.maxStartUs ? by_start_.lower_bound(*q.maxStartUs)
                           : by_start_.end();
    for (auto it = lo; it != hi; ++it) {
        const Record &r = records_[it->second];
        if (matches(r)) {
            out.push_back(&r);
            if (q.limit && out.size() >= q.limit)
                break;
        }
    }
    return out;
}

Dataset<const Record *>
TraceStore::scan() const
{
    std::vector<const Record *> all;
    all.reserve(records_.size());
    for (const Record &r : records_)
        all.push_back(&r);
    return Dataset<const Record *>(std::move(all));
}

} // namespace sleuth::storage
