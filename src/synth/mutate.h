#pragma once

/**
 * @file
 * Service-update mutations on application configs — the rolling updates
 * of the Fig. 6 experiment: (A) inflate one service's processing time,
 * (B) remove a service, (C) add a service at a given level, and (D) add
 * chains of services in the middle of the RPC dependency graph.
 */

#include "synth/config.h"
#include "util/rng.h"

namespace sleuth::synth {

/**
 * Pick a service whose call node sits at the given call depth in the
 * app's largest flow (root = depth 1). Returns -1 if none exists.
 */
int serviceAtDepth(const AppConfig &app, int depth);

/**
 * Update A: multiply the average processing time of every RPC of a
 * service by `factor` (shifts the kernels' log-means by ln(factor)).
 */
void scaleServiceLatency(AppConfig &app, int service_id, double factor);

/**
 * Update B: remove a service entirely — its RPCs disappear and every
 * call subtree rooted at one of them is pruned from every flow. Flows
 * whose root vanishes are dropped. Service/RPC ids are re-densified.
 * fatal() when removal would leave the app without flows.
 */
void removeService(AppConfig &app, int service_id);

/**
 * Update C: add a new middleware service with one RPC and attach an
 * invocation of it under a node at `depth - 1` in the largest flow.
 *
 * @return the new service id
 */
int addServiceAtDepth(AppConfig &app, int depth, const std::string &name,
                      util::Rng &rng);

/**
 * Update D: add `num_chains` chains of `chain_len` services each, every
 * chain attached under a random mid-depth node of the largest flow.
 *
 * @return the ids of the new services
 */
std::vector<int> addServiceChains(AppConfig &app, int num_chains,
                                  int chain_len, util::Rng &rng);

} // namespace sleuth::synth
