#include "catalog.h"

#include <cmath>
#include <unordered_map>

#include "util/logging.h"

namespace sleuth::synth {

namespace {

/** Nested literal call-tree used to describe catalog flows. */
struct Call
{
    int rpc;
    std::vector<Call> kids;
    int stage = 0;
    bool async = false;
};

/** Incremental builder for hand-written application models. */
class AppBuilder
{
  public:
    explicit AppBuilder(std::string name) { app_.name = std::move(name); }

    int
    service(const std::string &name, Tier tier, int replicas = 2)
    {
        ServiceConfig s;
        s.id = static_cast<int>(app_.services.size());
        s.name = name;
        s.tier = tier;
        s.replicas = replicas;
        app_.services.push_back(s);
        service_ids_[name] = s.id;
        return s.id;
    }

    int
    rpc(const std::string &service_name, const std::string &rpc_name,
        double log_mu, Resource resource = Resource::Cpu,
        double log_sigma = 0.55)
    {
        auto it = service_ids_.find(service_name);
        SLEUTH_ASSERT(it != service_ids_.end(), "unknown service ",
                      service_name);
        RpcConfig r;
        r.id = static_cast<int>(app_.rpcs.size());
        r.serviceId = it->second;
        r.name = rpc_name;
        r.startKernel = {resource, log_mu, log_sigma};
        r.endKernel = {resource, log_mu - 1.0, log_sigma};
        r.baseErrorProb = 0.0005;
        r.timeoutUs = static_cast<int64_t>(60.0 * 10.0 *
                                           std::exp(log_mu + 1.0));
        app_.rpcs.push_back(r);
        return r.id;
    }

    void
    flow(const std::string &name, double weight, const Call &root)
    {
        FlowConfig f;
        f.name = name;
        f.weight = weight;
        f.root = 0;
        appendCall(f, root);
        app_.flows.push_back(std::move(f));
    }

    AppConfig
    build()
    {
        app_.validate();
        return app_;
    }

  private:
    int
    appendCall(FlowConfig &f, const Call &c)
    {
        CallNode nd;
        nd.rpcId = c.rpc;
        nd.stage = c.stage;
        nd.async = c.async;
        f.nodes.push_back(nd);
        int id = static_cast<int>(f.nodes.size()) - 1;
        for (const Call &k : c.kids) {
            int kid = appendCall(f, k);
            f.nodes[static_cast<size_t>(id)].children.push_back(kid);
        }
        return id;
    }

    AppConfig app_;
    std::unordered_map<std::string, int> service_ids_;
};

} // namespace

AppConfig
sockShopConfig()
{
    AppBuilder b("sockshop");
    b.service("front-end", Tier::Frontend, 3);
    b.service("orders", Tier::Middleware, 2);
    b.service("carts", Tier::Middleware, 2);
    b.service("user", Tier::Middleware, 2);
    b.service("catalogue", Tier::Middleware, 2);
    b.service("payment", Tier::Middleware, 2);
    b.service("shipping", Tier::Middleware, 2);
    b.service("queue-master", Tier::Backend, 1);
    b.service("carts-db", Tier::Leaf, 1);
    b.service("orders-db", Tier::Leaf, 1);
    b.service("user-db", Tier::Leaf, 1);

    // front-end
    int fe_orders = b.rpc("front-end", "POST /orders", 6.2);
    int fe_cat = b.rpc("front-end", "GET /catalogue", 5.7);
    int fe_cart_get = b.rpc("front-end", "GET /cart", 5.6);
    int fe_cart_post = b.rpc("front-end", "POST /cart", 5.8);
    int fe_login = b.rpc("front-end", "GET /login", 5.6);
    // orders
    int or_create = b.rpc("orders", "CreateOrder", 6.0);
    int or_history = b.rpc("orders", "GetOrders", 5.6);
    int or_status = b.rpc("orders", "UpdateStatus", 5.2);
    // carts
    int ca_get = b.rpc("carts", "GetCart", 5.3, Resource::Memory);
    int ca_items = b.rpc("carts", "GetItems", 5.2, Resource::Memory);
    int ca_add = b.rpc("carts", "AddItem", 5.4, Resource::Memory);
    int ca_del = b.rpc("carts", "DeleteCart", 5.1, Resource::Memory);
    // user
    int us_cust = b.rpc("user", "GetCustomer", 5.2);
    int us_addr = b.rpc("user", "GetAddress", 5.1);
    int us_card = b.rpc("user", "GetCard", 5.1);
    int us_login = b.rpc("user", "Login", 5.5);
    // catalogue
    int cat_list = b.rpc("catalogue", "ListSocks", 5.5);
    int cat_sku = b.rpc("catalogue", "GetSku", 5.1);
    int cat_related = b.rpc("catalogue", "ListRelated", 5.3);
    int cat_db_q = b.rpc("catalogue", "QueryDb", 5.9, Resource::Disk);
    // payment
    int pay_auth = b.rpc("payment", "Authorize", 5.9);
    int pay_risk = b.rpc("payment", "RiskCheck", 5.4);
    // shipping
    int sh_create = b.rpc("shipping", "CreateShipment", 5.5);
    int qm_enqueue = b.rpc("queue-master", "Enqueue", 5.0,
                           Resource::Network);
    int qm_process = b.rpc("queue-master", "ProcessShipment", 6.3,
                           Resource::Disk);
    // databases
    int cdb_find = b.rpc("carts-db", "FindCart", 5.6, Resource::Disk);
    int cdb_items = b.rpc("carts-db", "FindItems", 5.7, Resource::Disk);
    int cdb_upd = b.rpc("carts-db", "UpdateCart", 5.8, Resource::Disk);
    int odb_save = b.rpc("orders-db", "SaveOrder", 6.0, Resource::Disk);
    int odb_find = b.rpc("orders-db", "FindOrders", 5.9, Resource::Disk);
    int odb_upd = b.rpc("orders-db", "UpdateOrder", 5.7, Resource::Disk);
    int udb_user = b.rpc("user-db", "FindUser", 5.5, Resource::Disk);
    int udb_addr = b.rpc("user-db", "FindAddress", 5.4, Resource::Disk);
    int udb_card = b.rpc("user-db", "FindCard", 5.4, Resource::Disk);

    // POST /orders: the most complex API (57 spans, depth 9 in paper).
    b.flow("post-orders", 1.0,
        {fe_orders, {
            {or_create, {
                {us_cust, {{udb_user, {}}}, 0},
                {us_addr, {{udb_addr, {}}}, 0},
                {us_card, {{udb_card, {}}}, 0},
                {ca_get, {{cdb_find, {}}}, 0},
                {ca_items, {{cdb_items, {}}}, 0},
                {cat_sku, {{cat_db_q, {}}}, 1},
                {pay_auth, {
                    {pay_risk, {{udb_card, {}}}, 0},
                }, 1},
                {odb_save, {}, 2},
                {sh_create, {
                    {qm_enqueue, {
                        {qm_process, {}, 0, true},
                    }, 0},
                }, 2},
                {ca_del, {{cdb_upd, {}}}, 2},
                {or_status, {{odb_upd, {}}}, 3},
            }},
        }});

    // GET /catalogue: browse inventory.
    b.flow("get-catalogue", 6.0,
        {fe_cat, {
            {cat_list, {{cat_db_q, {}}, {cat_db_q, {}, 1}}},
            {cat_related, {{cat_db_q, {}}}, 1},
        }});

    // GET /cart.
    b.flow("get-cart", 4.0,
        {fe_cart_get, {
            {ca_get, {{cdb_find, {}}}},
            {ca_items, {{cdb_items, {}}, {cat_sku, {{cat_db_q, {}}}, 1}},
             1},
        }});

    // POST /cart.
    b.flow("post-cart", 3.0,
        {fe_cart_post, {
            {cat_sku, {{cat_db_q, {}}}},
            {ca_add, {{cdb_upd, {}}}, 1},
        }});

    // GET /login + order history page.
    b.flow("login-history", 2.0,
        {fe_login, {
            {us_login, {{udb_user, {}}}},
            {or_history, {
                {odb_find, {}},
                {us_cust, {{udb_user, {}}}, 1},
            }, 1},
        }});

    return b.build();
}

AppConfig
socialNetworkConfig()
{
    AppBuilder b("socialnetwork");
    b.service("nginx", Tier::Frontend, 3);
    b.service("compose-post", Tier::Middleware, 2);
    b.service("home-timeline", Tier::Middleware, 2);
    b.service("user-timeline", Tier::Middleware, 2);
    b.service("text", Tier::Middleware, 2);
    b.service("user", Tier::Middleware, 2);
    b.service("media", Tier::Middleware, 2);
    b.service("unique-id", Tier::Middleware, 2);
    b.service("url-shorten", Tier::Middleware, 2);
    b.service("user-mention", Tier::Middleware, 2);
    b.service("post-storage", Tier::Backend, 2);
    b.service("social-graph", Tier::Backend, 2);
    b.service("write-home-timeline", Tier::Backend, 2);
    b.service("media-filter", Tier::Backend, 1);
    b.service("text-filter", Tier::Backend, 1);
    b.service("user-memcached", Tier::Leaf, 1);
    b.service("user-mongodb", Tier::Leaf, 1);
    b.service("post-memcached", Tier::Leaf, 1);
    b.service("post-mongodb", Tier::Leaf, 1);
    b.service("user-timeline-redis", Tier::Leaf, 1);
    b.service("user-timeline-mongodb", Tier::Leaf, 1);
    b.service("home-timeline-redis", Tier::Leaf, 1);
    b.service("social-graph-redis", Tier::Leaf, 1);
    b.service("social-graph-mongodb", Tier::Leaf, 1);
    b.service("url-shorten-mongodb", Tier::Leaf, 1);
    b.service("media-mongodb", Tier::Leaf, 1);

    int ngx_compose = b.rpc("nginx", "POST /wrk2-api/post/compose", 5.9);
    int ngx_home = b.rpc("nginx", "GET /wrk2-api/home-timeline", 5.6);
    int ngx_user = b.rpc("nginx", "GET /wrk2-api/user-timeline", 5.6);
    int ngx_follow = b.rpc("nginx", "POST /wrk2-api/user/follow", 5.5);

    int cp_compose = b.rpc("compose-post", "ComposePost", 5.9);
    int uid_gen = b.rpc("unique-id", "ComposeUniqueId", 4.8);
    int media_cmp = b.rpc("media", "ComposeMedia", 5.2);
    int media_filter = b.rpc("media-filter", "FilterMedia", 5.8);
    int media_store = b.rpc("media-mongodb", "InsertMedia", 5.6,
                            Resource::Disk);
    int user_cmp = b.rpc("user", "ComposeCreatorWithUserId", 5.0);
    int user_mmc = b.rpc("user-memcached", "GetUser", 4.6,
                         Resource::Memory);
    int user_mongo = b.rpc("user-mongodb", "FindUser", 5.6,
                           Resource::Disk);
    int text_cmp = b.rpc("text", "ComposeText", 5.3);
    int text_filter = b.rpc("text-filter", "FilterText", 5.5);
    int url_short = b.rpc("url-shorten", "ComposeUrls", 5.0);
    int url_mongo = b.rpc("url-shorten-mongodb", "InsertUrls", 5.5,
                          Resource::Disk);
    int um_compose = b.rpc("user-mention", "ComposeUserMentions", 5.0);
    int ps_store = b.rpc("post-storage", "StorePost", 5.4);
    int ps_mmc = b.rpc("post-memcached", "SetPost", 4.6,
                       Resource::Memory);
    int ps_mongo = b.rpc("post-mongodb", "InsertPost", 5.8,
                         Resource::Disk);
    int ps_read = b.rpc("post-storage", "ReadPosts", 5.5);
    int ps_mmc_get = b.rpc("post-memcached", "GetPosts", 4.7,
                           Resource::Memory);
    int ps_mongo_find = b.rpc("post-mongodb", "FindPosts", 6.0,
                              Resource::Disk);
    int ut_write = b.rpc("user-timeline", "WriteUserTimeline", 5.2);
    int ut_read = b.rpc("user-timeline", "ReadUserTimeline", 5.4);
    int ut_redis = b.rpc("user-timeline-redis", "ZAddPost", 4.6,
                         Resource::Memory);
    int ut_redis_get = b.rpc("user-timeline-redis", "ZRangePosts", 4.7,
                             Resource::Memory);
    int ut_mongo = b.rpc("user-timeline-mongodb", "UpsertTimeline", 5.7,
                         Resource::Disk);
    int wht_write = b.rpc("write-home-timeline", "FanoutHomeTimelines",
                          5.6);
    int ht_redis = b.rpc("home-timeline-redis", "ZAddPostFanout", 4.8,
                         Resource::Memory);
    int ht_redis_get = b.rpc("home-timeline-redis", "ZRangeHome", 4.7,
                             Resource::Memory);
    int ht_read = b.rpc("home-timeline", "ReadHomeTimeline", 5.4);
    int sg_followers = b.rpc("social-graph", "GetFollowers", 5.2);
    int sg_follow = b.rpc("social-graph", "Follow", 5.3);
    int sg_redis = b.rpc("social-graph-redis", "SMembersFollowers", 4.7,
                         Resource::Memory);
    int sg_mongo = b.rpc("social-graph-mongodb", "UpdateGraph", 5.7,
                         Resource::Disk);

    // ComposePost: the most complex API (31 spans, depth 9 in paper).
    b.flow("compose-post", 2.0,
        {ngx_compose, {
            {cp_compose, {
                {uid_gen, {}, 0},
                {media_cmp, {{media_filter, {}}}, 0},
                {user_cmp, {{user_mmc, {}}}, 0},
                {text_cmp, {
                    {url_short, {{url_mongo, {}}}, 0},
                    {um_compose, {{user_mongo, {}}}, 0},
                }, 0},
                {ps_store, {{ps_mongo, {}}}, 1},
                {ut_write, {{ut_redis, {}}}, 1},
                {wht_write, {
                    {sg_followers, {{sg_redis, {}}}, 0},
                    {ht_redis, {}, 1},
                }, 1, true},
            }},
        }});

    // ReadHomeTimeline.
    b.flow("read-home", 6.0,
        {ngx_home, {
            {ht_read, {
                {ht_redis_get, {}},
                {ps_read, {
                    {ps_mmc_get, {}},
                    {ps_mongo_find, {}, 1},
                }, 1},
                {user_cmp, {{user_mmc, {}}}, 1},
            }},
        }});

    // ReadUserTimeline.
    b.flow("read-user", 4.0,
        {ngx_user, {
            {ut_read, {
                {ut_redis_get, {}},
                {ps_read, {{ps_mmc_get, {}}, {ps_mongo_find, {}, 1}}, 1},
            }},
        }});

    // Media upload pipeline (covers the remaining operations).
    b.flow("upload-media", 1.0,
        {ngx_compose, {
            {media_cmp, {
                {media_filter, {}, 0},
                {media_store, {}, 1},
            }},
            {text_cmp, {{text_filter, {}}}, 1},
            {ps_store, {{ps_mmc, {}}}, 1},
            {ut_write, {{ut_mongo, {}}}, 2},
        }});

    // Follow.
    b.flow("follow", 1.5,
        {ngx_follow, {
            {sg_follow, {
                {user_mmc, {{user_mongo, {}}}},
                {sg_mongo, {}, 1},
                {sg_redis, {}, 1},
            }},
        }});

    return b.build();
}

} // namespace sleuth::synth
