#pragma once

/**
 * @file
 * Configuration model for synthetic microservice applications (paper §5).
 *
 * An AppConfig fully describes a microservice application: its services
 * (with tier and replica counts), its RPCs (with local-workload kernels,
 * error rates and timeouts), and its operation flows (call trees with
 * per-parent execution stages encoding sequential/parallel/async child
 * invocation). The same model drives the trace simulator, the code
 * generator, and the service-update mutations of the Fig. 6 experiment.
 */

#include <string>
#include <vector>

#include "util/json.h"

namespace sleuth::synth {

/** Service tier — determines placement in the RPC dependency graph. */
enum class Tier { Frontend, Middleware, Backend, Leaf };

/** Render a tier name. */
const char *toString(Tier tier);

/** Parse a tier name; fatal() on unknown input. */
Tier tierFromString(const std::string &s);

/** Parse a tier name; false on unknown input (no abort). */
bool tryTierFromString(const std::string &s, Tier *out);

/**
 * Hardware/OS resource a local-workload kernel stresses (paper §5.1.4).
 * Chaos faults of the matching resource inflate these kernels.
 */
enum class Resource { Cpu, Memory, Disk, Network };

/** Render a resource name. */
const char *toString(Resource r);

/** Parse a resource name; fatal() on unknown input. */
Resource resourceFromString(const std::string &s);

/** Parse a resource name; false on unknown input (no abort). */
bool tryResourceFromString(const std::string &s, Resource *out);

/**
 * A local execution kernel: log-normally distributed service time on
 * one resource. Inserted at the start and end of each RPC handler.
 */
struct KernelConfig
{
    Resource resource = Resource::Cpu;
    /** Mean of the underlying normal (natural log of microseconds). */
    double logMu = 5.0;
    /** Stddev of the underlying normal. */
    double logSigma = 0.5;
};

/** One microservice. */
struct ServiceConfig
{
    int id = 0;
    std::string name;
    Tier tier = Tier::Middleware;
    /** Pod replicas deployed for this service. */
    int replicas = 1;
};

/** One RPC (operation) exposed by a service. */
struct RpcConfig
{
    int id = 0;
    int serviceId = 0;
    std::string name;
    /** Request-processing kernel before child calls. */
    KernelConfig startKernel;
    /** Response-processing kernel after child calls. */
    KernelConfig endKernel;
    /** Intrinsic probability of an exclusive error. */
    double baseErrorProb = 0.0;
    /** Client-side timeout for calls to this RPC (0 = none). */
    int64_t timeoutUs = 0;
};

/**
 * One invocation in an operation flow's call tree. The execution graph
 * of a parent's children (paper §5.1.3) is encoded as barrier stages:
 * children in stage s start only after every synchronous child in
 * stages < s has completed; children sharing a stage run in parallel.
 * Asynchronous children are dispatched in their stage but never block.
 */
struct CallNode
{
    /** The RPC this node invokes. */
    int rpcId = 0;
    /** Asynchronous (producer/consumer) instead of client/server. */
    bool async = false;
    /** Barrier stage among this node's siblings. */
    int stage = 0;
    /** Child node indices (into FlowConfig::nodes). */
    std::vector<int> children;
};

/** One operation flow: a call tree rooted at an entry RPC. */
struct FlowConfig
{
    std::string name;
    /** Root node index. */
    int root = 0;
    std::vector<CallNode> nodes;
    /** Relative frequency in the workload mix. */
    double weight = 1.0;
    /** Latency SLO for this flow in microseconds (0 = uncalibrated). */
    int64_t sloUs = 0;
};

/** A complete synthetic microservice application. */
struct AppConfig
{
    std::string name;
    std::vector<ServiceConfig> services;
    std::vector<RpcConfig> rpcs;
    std::vector<FlowConfig> flows;
    /** Network one-way latency kernel applied to every RPC hop. */
    KernelConfig network{Resource::Network, 3.9, 0.3};  // ~50us typical

    /** Validate referential integrity; fatal() with a reason if broken. */
    void validate() const;

    /**
     * Validate referential integrity without aborting: the first
     * defect as a human-readable message, or empty when the config is
     * well-formed.
     */
    std::string validationError() const;

    /** Number of call-tree nodes in the largest flow. */
    size_t maxFlowNodes() const;

    /** Depth of the deepest call tree (root = 1). */
    int maxFlowDepth() const;

    /** Largest child count of any call node. */
    int maxFanout() const;
};

/** Serialize an application config. */
util::Json toJson(const AppConfig &app);

/** Deserialize an application config; fatal() on malformed input. */
AppConfig appFromJson(const util::Json &doc);

/**
 * As appFromJson(), but returns false instead of dying on malformed
 * input (unknown enum strings, missing or mistyped fields, broken
 * referential integrity). Inferred or hand-edited model JSON goes
 * through this path so a typo is a recoverable parse error, not an
 * abort.
 *
 * @param out receives the parsed config on success
 * @param error receives a description naming the offending field
 */
bool tryAppFromJson(const util::Json &doc, AppConfig *out,
                    std::string *error);

} // namespace sleuth::synth
