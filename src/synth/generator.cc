#include "generator.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace sleuth::synth {

namespace {

int
tierRank(Tier t)
{
    switch (t) {
      case Tier::Frontend: return 0;
      case Tier::Middleware: return 1;
      case Tier::Backend: return 2;
      case Tier::Leaf: return 3;
    }
    util::panic("invalid tier");
}

const std::vector<std::string> &
serviceWords(int vocabulary)
{
    static const std::vector<std::string> realistic = {
        "frontend", "gateway", "auth", "user", "order", "cart",
        "payment", "shipping", "catalog", "search", "recommend",
        "inventory", "pricing", "review", "media", "social", "timeline",
        "notify", "session", "profile", "checkout", "wishlist", "geo",
        "ledger", "billing", "fraud", "email", "config", "feature",
        "metrics", "report", "export", "import", "quota", "rate",
        "token", "identity", "campaign", "coupon", "loyalty", "return",
        "refund", "warehouse", "delivery", "route", "driver", "chat",
        "feed", "follow", "post", "comment", "like", "tag", "upload",
        "resize", "encode", "stream", "archive", "audit", "policy",
        "cache", "store", "index", "queue", "broker", "registry",
    };
    if (vocabulary == 0)
        return realistic;
    // Disjoint synthetic vocabularies for the Fig. 8 experiment.
    static std::vector<std::vector<std::string>> cache_by_tag;
    size_t tag = static_cast<size_t>(vocabulary);
    if (cache_by_tag.size() <= tag)
        cache_by_tag.resize(tag + 1);
    if (cache_by_tag[tag].empty()) {
        util::Rng rng(0xF00Du + tag * 977u);
        for (int i = 0; i < 64; ++i) {
            std::string w = "zx";
            int len = static_cast<int>(rng.uniformInt(4, 8));
            for (int c = 0; c < len; ++c)
                w.push_back(static_cast<char>('a' + rng.uniformInt(0, 25)));
            cache_by_tag[tag].push_back(w);
        }
    }
    return cache_by_tag[tag];
}

const std::vector<std::string> &
verbWords(int vocabulary)
{
    static const std::vector<std::string> realistic = {
        "Get", "List", "Create", "Update", "Delete", "Query", "Scan",
        "Put", "Fetch", "Compose", "Render", "Validate", "Publish",
        "Consume", "Sync", "Resolve", "Lookup", "Aggregate",
    };
    if (vocabulary == 0)
        return realistic;
    static std::vector<std::vector<std::string>> cache_by_tag;
    size_t tag = static_cast<size_t>(vocabulary);
    if (cache_by_tag.size() <= tag)
        cache_by_tag.resize(tag + 1);
    if (cache_by_tag[tag].empty()) {
        util::Rng rng(0xBEEFu + tag * 1013u);
        for (int i = 0; i < 18; ++i) {
            std::string w = "Q";
            int len = static_cast<int>(rng.uniformInt(3, 6));
            for (int c = 0; c < len; ++c)
                w.push_back(static_cast<char>('a' + rng.uniformInt(0, 25)));
            cache_by_tag[tag].push_back(w);
        }
    }
    return cache_by_tag[tag];
}

Resource
kernelResourceForTier(Tier t, util::Rng &rng)
{
    switch (t) {
      case Tier::Frontend:
        return rng.bernoulli(0.7) ? Resource::Cpu : Resource::Network;
      case Tier::Middleware:
        return rng.bernoulli(0.6) ? Resource::Cpu : Resource::Memory;
      case Tier::Backend:
        return rng.bernoulli(0.5) ? Resource::Memory : Resource::Disk;
      case Tier::Leaf:
        return rng.bernoulli(0.7) ? Resource::Disk : Resource::Memory;
    }
    util::panic("invalid tier");
}

/** A call tree under construction. */
struct TreeBuilder
{
    FlowConfig flow;
    std::vector<int> depth;   // per node
    std::vector<int> rank;    // tier rank per node

    int
    addNode(int rpc_id, int rpc_rank, int parent, int at_depth)
    {
        CallNode nd;
        nd.rpcId = rpc_id;
        flow.nodes.push_back(nd);
        int id = static_cast<int>(flow.nodes.size()) - 1;
        depth.push_back(at_depth);
        rank.push_back(rpc_rank);
        if (parent >= 0)
            flow.nodes[static_cast<size_t>(parent)].children.push_back(id);
        return id;
    }
};

} // namespace

GeneratorParams
syntheticParams(int num_rpcs, uint64_t seed)
{
    GeneratorParams p;
    p.numRpcs = num_rpcs;
    p.name = "synthetic-" + std::to_string(num_rpcs);
    p.seed = seed;
    p.numServices = std::max(2, num_rpcs / 4);
    if (num_rpcs <= 16) {
        p.maxDepth = 3;
        p.maxOutDegree = 4;
        p.numFlows = 3;
    } else if (num_rpcs <= 64) {
        p.maxDepth = 7;
        p.maxOutDegree = 7;
        p.numFlows = 4;
    } else if (num_rpcs <= 256) {
        p.maxDepth = 15;
        p.maxOutDegree = 14;
        p.numFlows = 6;
    } else {
        p.maxDepth = 15;
        p.maxOutDegree = 24;
        p.numFlows = 8;
    }
    return p;
}

AppConfig
generateApp(const GeneratorParams &params)
{
    SLEUTH_ASSERT(params.numRpcs >= 2, "need at least two rpcs");
    util::Rng rng(params.seed ^ 0x51e07au);

    AppConfig app;
    app.name = params.name;
    int n_services = params.numServices > 0
        ? params.numServices
        : std::max(2, params.numRpcs / 4);
    n_services = std::min(n_services, params.numRpcs);

    // --- Services across tiers (paper §5.1.1). ---
    int n_frontend = std::max(1, n_services / 16);
    int n_leaf = std::max(1, n_services / 3);
    int n_backend = std::max(1, n_services / 4);
    int n_middleware =
        std::max(1, n_services - n_frontend - n_leaf - n_backend);
    const std::vector<std::string> &words =
        serviceWords(params.vocabulary);
    auto make_services = [&](int count, Tier tier) {
        for (int i = 0; i < count; ++i) {
            ServiceConfig s;
            s.id = static_cast<int>(app.services.size());
            const std::string &w = words[static_cast<size_t>(s.id) %
                                         words.size()];
            s.name = w + "-" + toString(tier);
            if (static_cast<size_t>(s.id) >= words.size())
                s.name += "-" + std::to_string(s.id / words.size());
            s.tier = tier;
            s.replicas = static_cast<int>(rng.uniformInt(1, 3));
            app.services.push_back(std::move(s));
        }
    };
    make_services(n_frontend, Tier::Frontend);
    make_services(n_middleware, Tier::Middleware);
    make_services(n_backend, Tier::Backend);
    make_services(n_leaf, Tier::Leaf);
    n_services = static_cast<int>(app.services.size());

    // --- RPC allocation: every service gets one, the rest spread. ---
    const std::vector<std::string> &verbs = verbWords(params.vocabulary);
    std::vector<int> rpc_count(static_cast<size_t>(n_services), 1);
    for (int extra = params.numRpcs - n_services; extra > 0; --extra)
        ++rpc_count[static_cast<size_t>(
            rng.uniformInt(0, n_services - 1))];
    for (int sid = 0; sid < n_services; ++sid) {
        const ServiceConfig &svc = app.services[static_cast<size_t>(sid)];
        for (int k = 0; k < rpc_count[static_cast<size_t>(sid)]; ++k) {
            RpcConfig r;
            r.id = static_cast<int>(app.rpcs.size());
            r.serviceId = sid;
            std::string noun = svc.name.substr(0, svc.name.find('-'));
            noun[0] = static_cast<char>(std::toupper(
                static_cast<unsigned char>(noun[0])));
            r.name = verbs[static_cast<size_t>(
                         rng.uniformInt(0,
                                        static_cast<int64_t>(
                                            verbs.size()) - 1))] +
                     noun;
            if (k > 0)
                r.name += "V" + std::to_string(k);
            double mu = params.kernelLogMu + rng.uniform(-0.7, 0.7);
            r.startKernel = {kernelResourceForTier(svc.tier, rng), mu,
                             params.kernelLogSigma};
            r.endKernel = {kernelResourceForTier(svc.tier, rng),
                           mu - 0.8, params.kernelLogSigma};
            r.baseErrorProb = params.baseErrorProb;
            double typical = std::exp(mu) + std::exp(mu - 0.8);
            r.timeoutUs = static_cast<int64_t>(
                typical * params.timeoutFactor *
                static_cast<double>(params.maxDepth));
            app.rpcs.push_back(std::move(r));
        }
    }

    auto rpc_rank = [&](int rpc_id) {
        return tierRank(app.services[static_cast<size_t>(
            app.rpcs[static_cast<size_t>(rpc_id)].serviceId)].tier);
    };
    std::vector<int> frontend_rpcs;
    for (const RpcConfig &r : app.rpcs)
        if (rpc_rank(r.id) == 0)
            frontend_rpcs.push_back(r.id);
    SLEUTH_ASSERT(!frontend_rpcs.empty());

    // Attach a node for rpc under a compatible parent: parent depth <
    // maxDepth, parent fanout < maxOutDegree, parent not leaf-tier, and
    // parent rank <= child rank (requests flow front to back).
    auto attach = [&](TreeBuilder &tb, int rpc_id) {
        int rk = rpc_rank(rpc_id);
        std::vector<int> candidates;
        std::vector<double> weights;
        for (size_t i = 0; i < tb.flow.nodes.size(); ++i) {
            if (tb.depth[i] >= params.maxDepth)
                continue;
            if (static_cast<int>(tb.flow.nodes[i].children.size()) >=
                params.maxOutDegree)
                continue;
            if (tb.rank[i] >= 3)  // leaf-tier rpcs are terminal
                continue;
            if (tb.rank[i] > rk)
                continue;
            candidates.push_back(static_cast<int>(i));
            // Prefer parents one rank above and moderately deep.
            double w = (tb.rank[i] == rk || tb.rank[i] == rk - 1)
                ? 4.0 : 1.0;
            weights.push_back(w);
        }
        if (candidates.empty()) {
            // Relax the rank constraint (keeps generation total).
            for (size_t i = 0; i < tb.flow.nodes.size(); ++i) {
                if (tb.depth[i] >= params.maxDepth)
                    continue;
                if (static_cast<int>(tb.flow.nodes[i].children.size()) >=
                    params.maxOutDegree)
                    continue;
                if (tb.rank[i] >= 3)
                    continue;
                candidates.push_back(static_cast<int>(i));
                weights.push_back(1.0);
            }
        }
        if (candidates.empty()) {
            // The tree is saturated under the depth/fan-out limits
            // (small apps hit this on rare seeds: every non-leaf-tier
            // node is at maxDepth or full fan-out). Generation must
            // stay total, so over-fill deterministically: attach under
            // the non-leaf-tier node with the smallest fan-out,
            // shallowest and lowest-index among equals.
            int best = -1;
            for (size_t i = 0; i < tb.flow.nodes.size(); ++i) {
                if (tb.rank[i] >= 3)
                    continue;
                if (best < 0)
                    best = static_cast<int>(i);
                auto load = [&](size_t x) {
                    return std::make_pair(
                        tb.flow.nodes[x].children.size(),
                        tb.depth[x]);
                };
                if (load(i) < load(static_cast<size_t>(best)))
                    best = static_cast<int>(i);
            }
            // Every flow is rooted at a frontend (rank 0) node, so a
            // non-leaf-tier node always exists.
            SLEUTH_ASSERT(best >= 0, "call tree has no attachable node");
            candidates.push_back(best);
            weights.push_back(1.0);
        }
        int parent = candidates[rng.weightedIndex(weights)];
        return tb.addNode(rpc_id, rk, parent,
                          tb.depth[static_cast<size_t>(parent)] + 1);
    };

    auto finalize_flow = [&](TreeBuilder &tb) {
        // Assign barrier stages among each node's children and flag
        // async children.
        for (CallNode &nd : tb.flow.nodes) {
            size_t k = nd.children.size();
            if (k == 0)
                continue;
            int stages = 1 + static_cast<int>(rng.uniformInt(
                0, std::min<int64_t>(2, static_cast<int64_t>(k) - 1)));
            for (int child : nd.children) {
                CallNode &cn =
                    tb.flow.nodes[static_cast<size_t>(child)];
                cn.stage = static_cast<int>(
                    rng.uniformInt(0, stages - 1));
                cn.async = rng.bernoulli(params.asyncProb);
            }
        }
    };

    // --- The full flow covers every RPC exactly once (paper Table 1:
    // the largest trace touches the whole dependency graph). ---
    {
        TreeBuilder tb;
        tb.flow.name = "flow-full";
        tb.flow.root = 0;
        tb.flow.weight = 1.0;
        std::vector<int> order;
        for (const RpcConfig &r : app.rpcs)
            order.push_back(r.id);
        std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
            return rpc_rank(a) < rpc_rank(b);
        });
        // Seed a spine that realizes the target depth: take the first
        // maxDepth rpcs in rank order and chain them.
        int spine_len =
            std::min<int>(params.maxDepth,
                          static_cast<int>(order.size()));
        int prev = -1;
        std::vector<bool> used(app.rpcs.size(), false);
        for (int d = 0; d < spine_len; ++d) {
            // Pick the first unused rpc whose rank is feasible (leaf
            // ranks only allowed at the spine end).
            int chosen = -1;
            for (int rid : order) {
                if (used[static_cast<size_t>(rid)])
                    continue;
                if (d + 1 < spine_len && rpc_rank(rid) >= 3)
                    continue;
                chosen = rid;
                break;
            }
            if (chosen < 0)
                break;
            used[static_cast<size_t>(chosen)] = true;
            prev = tb.addNode(chosen, rpc_rank(chosen), prev, d + 1);
        }
        for (int rid : order) {
            if (used[static_cast<size_t>(rid)])
                continue;
            attach(tb, rid);
        }
        finalize_flow(tb);
        app.flows.push_back(std::move(tb.flow));
    }

    // --- Additional smaller flows reuse random subsets of RPCs. ---
    for (int f = 1; f < params.numFlows; ++f) {
        TreeBuilder tb;
        tb.flow.name = "flow-" + std::to_string(f);
        tb.flow.root = 0;
        tb.flow.weight = 3.0;  // small requests dominate the mix
        int root_rpc = frontend_rpcs[static_cast<size_t>(
            rng.uniformInt(0,
                           static_cast<int64_t>(frontend_rpcs.size()) -
                               1))];
        tb.addNode(root_rpc, 0, -1, 1);
        int target = std::max(3, params.numRpcs / 4);
        for (int i = 1; i < target; ++i) {
            int rid = static_cast<int>(
                rng.uniformInt(0, static_cast<int64_t>(
                                      app.rpcs.size()) - 1));
            attach(tb, rid);
        }
        finalize_flow(tb);
        app.flows.push_back(std::move(tb.flow));
    }

    app.validate();
    return app;
}

} // namespace sleuth::synth
