#include "mutate.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace sleuth::synth {

namespace {

/** Index of the flow with the most nodes. */
size_t
largestFlow(const AppConfig &app)
{
    SLEUTH_ASSERT(!app.flows.empty());
    size_t best = 0;
    for (size_t i = 1; i < app.flows.size(); ++i)
        if (app.flows[i].nodes.size() > app.flows[best].nodes.size())
            best = i;
    return best;
}

/** Call depth of every node of a flow (root = 1). */
std::vector<int>
nodeDepths(const FlowConfig &f)
{
    std::vector<int> depth(f.nodes.size(), 0);
    std::vector<std::pair<int, int>> stack = {{f.root, 1}};
    while (!stack.empty()) {
        auto [node, d] = stack.back();
        stack.pop_back();
        depth[static_cast<size_t>(node)] = d;
        for (int c : f.nodes[static_cast<size_t>(node)].children)
            stack.emplace_back(c, d + 1);
    }
    return depth;
}

/** A fresh RPC for an added service. */
RpcConfig
makeRpc(const AppConfig &app, int service_id, const std::string &name,
        util::Rng &rng)
{
    RpcConfig r;
    r.id = static_cast<int>(app.rpcs.size());
    r.serviceId = service_id;
    r.name = name;
    double mu = 5.3 + rng.uniform(-0.4, 0.4);
    r.startKernel = {Resource::Cpu, mu, 0.6};
    r.endKernel = {Resource::Cpu, mu - 0.8, 0.6};
    r.baseErrorProb = 0.0005;
    r.timeoutUs = static_cast<int64_t>(600.0 * std::exp(mu + 1.0));
    return r;
}

} // namespace

int
serviceAtDepth(const AppConfig &app, int depth)
{
    const FlowConfig &f = app.flows[largestFlow(app)];
    std::vector<int> depths = nodeDepths(f);
    for (size_t i = 0; i < f.nodes.size(); ++i)
        if (depths[i] == depth)
            return app.rpcs[static_cast<size_t>(f.nodes[i].rpcId)]
                .serviceId;
    return -1;
}

void
scaleServiceLatency(AppConfig &app, int service_id, double factor)
{
    SLEUTH_ASSERT(factor > 0.0);
    SLEUTH_ASSERT(service_id >= 0 &&
                  service_id < static_cast<int>(app.services.size()));
    double shift = std::log(factor);
    for (RpcConfig &r : app.rpcs) {
        if (r.serviceId != service_id)
            continue;
        r.startKernel.logMu += shift;
        r.endKernel.logMu += shift;
    }
}

void
removeService(AppConfig &app, int service_id)
{
    SLEUTH_ASSERT(service_id >= 0 &&
                  service_id < static_cast<int>(app.services.size()));

    // Old-to-new id maps after dropping the service and its rpcs.
    std::vector<int> service_map(app.services.size(), -1);
    {
        int next = 0;
        for (size_t i = 0; i < app.services.size(); ++i)
            if (static_cast<int>(i) != service_id)
                service_map[i] = next++;
    }
    std::vector<int> rpc_map(app.rpcs.size(), -1);
    {
        int next = 0;
        for (size_t i = 0; i < app.rpcs.size(); ++i)
            if (app.rpcs[i].serviceId != service_id)
                rpc_map[i] = next++;
    }

    // Prune flows: rebuild each call tree skipping subtrees rooted at a
    // removed rpc.
    std::vector<FlowConfig> new_flows;
    for (const FlowConfig &f : app.flows) {
        if (rpc_map[static_cast<size_t>(
                f.nodes[static_cast<size_t>(f.root)].rpcId)] < 0)
            continue;  // entry rpc removed: flow disappears
        FlowConfig nf;
        nf.name = f.name;
        nf.weight = f.weight;
        nf.sloUs = f.sloUs;
        // Recursive copy via explicit stack; returns new index or -1.
        struct Item { int old_node; int new_parent; };
        std::vector<Item> stack = {{f.root, -1}};
        nf.root = 0;
        while (!stack.empty()) {
            Item it = stack.back();
            stack.pop_back();
            const CallNode &old_nd =
                f.nodes[static_cast<size_t>(it.old_node)];
            if (rpc_map[static_cast<size_t>(old_nd.rpcId)] < 0)
                continue;  // prune this subtree
            CallNode nd;
            nd.rpcId = rpc_map[static_cast<size_t>(old_nd.rpcId)];
            nd.async = old_nd.async;
            nd.stage = old_nd.stage;
            nf.nodes.push_back(nd);
            int new_id = static_cast<int>(nf.nodes.size()) - 1;
            if (it.new_parent >= 0)
                nf.nodes[static_cast<size_t>(it.new_parent)]
                    .children.push_back(new_id);
            for (int c : old_nd.children)
                stack.push_back({c, new_id});
        }
        new_flows.push_back(std::move(nf));
    }
    if (new_flows.empty())
        util::fatal("removing service ", service_id,
                    " would delete every flow");

    std::vector<ServiceConfig> new_services;
    for (const ServiceConfig &s : app.services) {
        if (s.id == service_id)
            continue;
        ServiceConfig ns = s;
        ns.id = service_map[static_cast<size_t>(s.id)];
        new_services.push_back(std::move(ns));
    }
    std::vector<RpcConfig> new_rpcs;
    for (const RpcConfig &r : app.rpcs) {
        if (r.serviceId == service_id)
            continue;
        RpcConfig nr = r;
        nr.id = rpc_map[static_cast<size_t>(r.id)];
        nr.serviceId = service_map[static_cast<size_t>(r.serviceId)];
        new_rpcs.push_back(std::move(nr));
    }

    app.services = std::move(new_services);
    app.rpcs = std::move(new_rpcs);
    app.flows = std::move(new_flows);
    app.validate();
}

int
addServiceAtDepth(AppConfig &app, int depth, const std::string &name,
                  util::Rng &rng)
{
    SLEUTH_ASSERT(depth >= 2, "cannot add a service above the root");
    ServiceConfig s;
    s.id = static_cast<int>(app.services.size());
    s.name = name;
    s.tier = Tier::Middleware;
    s.replicas = 2;
    app.services.push_back(s);
    RpcConfig r = makeRpc(app, s.id, "Handle" + name, rng);
    app.rpcs.push_back(r);

    FlowConfig &f = app.flows[largestFlow(app)];
    std::vector<int> depths = nodeDepths(f);
    std::vector<int> candidates;
    for (size_t i = 0; i < f.nodes.size(); ++i)
        if (depths[i] == depth - 1)
            candidates.push_back(static_cast<int>(i));
    SLEUTH_ASSERT(!candidates.empty(), "no call node at depth ",
                  depth - 1);
    int parent = candidates[static_cast<size_t>(rng.uniformInt(
        0, static_cast<int64_t>(candidates.size()) - 1))];
    CallNode nd;
    nd.rpcId = r.id;
    f.nodes.push_back(nd);
    f.nodes[static_cast<size_t>(parent)].children.push_back(
        static_cast<int>(f.nodes.size()) - 1);
    app.validate();
    return s.id;
}

std::vector<int>
addServiceChains(AppConfig &app, int num_chains, int chain_len,
                 util::Rng &rng)
{
    SLEUTH_ASSERT(num_chains > 0 && chain_len > 0);
    std::vector<int> new_services;
    FlowConfig &f = app.flows[largestFlow(app)];
    std::vector<int> depths = nodeDepths(f);
    int max_depth = *std::max_element(depths.begin(), depths.end());
    int mid = std::max(1, max_depth / 2);

    for (int c = 0; c < num_chains; ++c) {
        // depths covers only the pre-existing nodes; chain nodes
        // appended by earlier iterations are not attachment points.
        std::vector<int> candidates;
        for (size_t i = 0; i < depths.size(); ++i)
            if (depths[i] == mid)
                candidates.push_back(static_cast<int>(i));
        if (candidates.empty())
            for (size_t i = 0; i < depths.size(); ++i)
                if (depths[i] == 1)
                    candidates.push_back(static_cast<int>(i));
        int parent = candidates[static_cast<size_t>(rng.uniformInt(
            0, static_cast<int64_t>(candidates.size()) - 1))];
        for (int k = 0; k < chain_len; ++k) {
            ServiceConfig s;
            s.id = static_cast<int>(app.services.size());
            s.name = "chain-" + std::to_string(c) + "-svc-" +
                     std::to_string(k);
            s.tier = Tier::Middleware;
            s.replicas = 1;
            app.services.push_back(s);
            new_services.push_back(s.id);
            RpcConfig r =
                makeRpc(app, s.id, "HandleChain" + std::to_string(c) +
                        "L" + std::to_string(k), rng);
            app.rpcs.push_back(r);

            CallNode nd;
            nd.rpcId = r.id;
            f.nodes.push_back(nd);
            int node_id = static_cast<int>(f.nodes.size()) - 1;
            f.nodes[static_cast<size_t>(parent)].children.push_back(
                node_id);
            parent = node_id;  // chain deeper
        }
    }
    app.validate();
    return new_services;
}

} // namespace sleuth::synth
