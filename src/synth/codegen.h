#pragma once

/**
 * @file
 * Deployable-artifact generation (paper §5.2): from an AppConfig, emit
 * a gRPC proto definition, a C++ service skeleton per microservice
 * (with OpenTelemetry-style span emission, Consul registration hooks
 * and the configured workload kernels), a Kubernetes manifest per
 * service, and a docker-compose file for local runs. The files are
 * returned in memory; callers write them wherever they deploy from.
 */

#include <string>
#include <vector>

#include "synth/config.h"

namespace sleuth::synth {

/** One emitted artifact. */
struct GeneratedFile
{
    /** Relative path under the output tree. */
    std::string path;
    /** Full file contents. */
    std::string contents;
};

/** Emit every deployment artifact for an application. */
std::vector<GeneratedFile> generateCode(const AppConfig &app);

/** Write generated files under a root directory (creates directories). */
void writeFiles(const std::vector<GeneratedFile> &files,
                const std::string &root);

} // namespace sleuth::synth
