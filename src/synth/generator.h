#pragma once

/**
 * @file
 * Synthetic microservice benchmark generator (paper §5).
 *
 * Given a target scale, the generator allocates services across tiers,
 * distributes RPCs to services, constructs an RPC call tree per
 * operation flow (depth/fanout follow the Alibaba-trace shape
 * characterization the paper cites), builds per-parent execution stages
 * (sequential / parallel / async child invocation), and attaches
 * log-normal local-workload kernels. The result can be simulated,
 * mutated (service updates), serialized, or emitted as deployable code.
 */

#include <cstdint>

#include "synth/config.h"

namespace sleuth::synth {

/** Generator knobs. Defaults produce a Synthetic-64-like application. */
struct GeneratorParams
{
    std::string name = "synthetic";
    /** Total number of RPCs (the paper's scale axis). */
    int numRpcs = 64;
    /** Number of services; 0 derives numRpcs / 4 as in the paper. */
    int numServices = 0;
    /** Number of operation flows (the largest covers every RPC). */
    int numFlows = 4;
    /** Maximum call-tree depth. */
    int maxDepth = 7;
    /** Maximum children per invocation. */
    int maxOutDegree = 7;
    /** Probability a child call is asynchronous. */
    double asyncProb = 0.06;
    /** Mean of ln(kernel microseconds). */
    double kernelLogMu = 5.3;  // ~200us
    /** Stddev of ln(kernel microseconds) — heavy tail. */
    double kernelLogSigma = 0.6;
    /** Intrinsic exclusive-error probability per RPC. */
    double baseErrorProb = 0.0005;
    /** Client timeout as a multiple of the RPC's typical latency. */
    double timeoutFactor = 60.0;
    /** Seed controlling every random choice. */
    uint64_t seed = 1;
    /**
     * Vocabulary tag: generators with different tags draw service and
     * RPC names from disjoint vocabularies (used by the Fig. 8
     * semantic-sensitivity experiment).
     */
    int vocabulary = 0;
};

/**
 * Convenience: parameters matching the paper's Synthetic-N benchmarks
 * (N in {16, 64, 256, 1024}); other sizes interpolate sensibly.
 */
GeneratorParams syntheticParams(int num_rpcs, uint64_t seed = 1);

/** Generate a synthetic application; the result is validate()d. */
AppConfig generateApp(const GeneratorParams &params);

} // namespace sleuth::synth
