#include "infer.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "storage/trace_store.h"
#include "util/logging.h"

namespace sleuth::synth {
namespace {

/**
 * One reconstructed call: the server-side execution of an RPC plus
 * the client-side hop that invoked it (absent for the trace root).
 */
struct CallObs
{
    std::string service;
    std::string rpc;
    bool async = false;
    bool hasClient = false;
    int64_t clientStartUs = 0;
    int64_t clientEndUs = 0;
    int64_t serverStartUs = 0;
    int64_t serverEndUs = 0;
    bool serverError = false;
    bool clientError = false;
    std::string pod;
    /** Barrier stage among siblings (assigned from start overlap). */
    int stage = 0;
    std::vector<CallObs> children;
};

bool
isCallerKind(trace::SpanKind k)
{
    return k == trace::SpanKind::Client ||
           k == trace::SpanKind::Producer;
}

/**
 * Reconstruct the call rooted at server-side span `idx`. Client-side
 * children are hops to nested calls (each wrapping one server-side
 * span); bare server-side children are treated as direct calls with
 * no network hop. Returns false on shapes the call model cannot
 * express (e.g. a client hop with no callee).
 */
bool
buildCall(const trace::Trace &t, const trace::TraceGraph &g, int idx,
          CallObs *out)
{
    const trace::Span &server = t.spans[static_cast<size_t>(idx)];
    out->service = server.service;
    out->rpc = server.name;
    out->serverStartUs = server.startUs;
    out->serverEndUs = server.endUs;
    out->serverError = server.hasError();
    out->pod = server.pod;
    for (int ci : g.children(idx)) {
        const trace::Span &child = t.spans[static_cast<size_t>(ci)];
        CallObs obs;
        if (isCallerKind(child.kind)) {
            int serverIdx = -1;
            for (int gi : g.children(ci))
                if (!isCallerKind(t.spans[static_cast<size_t>(gi)].kind)) {
                    serverIdx = gi;
                    break;
                }
            if (serverIdx < 0)
                return false;
            if (!buildCall(t, g, serverIdx, &obs))
                return false;
            obs.hasClient = true;
            obs.async =
                child.kind == trace::SpanKind::Producer ||
                t.spans[static_cast<size_t>(serverIdx)].kind ==
                    trace::SpanKind::Consumer;
            obs.clientStartUs = child.startUs;
            obs.clientEndUs = child.endUs;
            obs.clientError = child.hasError();
        } else {
            if (!buildCall(t, g, ci, &obs))
                return false;
            obs.clientStartUs = obs.serverStartUs;
            obs.clientEndUs = obs.serverEndUs;
            obs.clientError = obs.serverError;
        }
        out->children.push_back(std::move(obs));
    }

    // Stage detection from start-time overlap: children sharing a
    // dispatch time ran in parallel; a child that starts at or after
    // every earlier synchronous sibling has finished opens a new
    // barrier stage. Asynchronous siblings never gate a stage.
    std::stable_sort(out->children.begin(), out->children.end(),
                     [](const CallObs &a, const CallObs &b) {
                         return a.clientStartUs < b.clientStartUs;
                     });
    if (!out->children.empty()) {
        int stage = 0;
        int64_t stageStart = out->children[0].clientStartUs;
        int64_t gate = stageStart;
        for (CallObs &c : out->children) {
            if (c.clientStartUs > stageStart && c.clientStartUs >= gate) {
                ++stage;
                stageStart = c.clientStartUs;
                gate = stageStart;
            }
            c.stage = stage;
            if (!c.async)
                gate = std::max(gate, c.clientEndUs);
        }
    }
    return true;
}

/**
 * Canonical shape signature of a call tree. Children are grouped by
 * stage with signatures sorted within a stage, so shapes differing
 * only in within-stage (parallel) order collapse to one flow.
 */
std::string
signatureOf(const CallObs &c)
{
    std::string sig =
        c.service + "\x1f" + c.rpc + (c.async ? "\x1f" "a" : "\x1f" "s");
    if (c.children.empty())
        return sig;
    std::vector<std::vector<std::string>> stages;
    for (const CallObs &ch : c.children) {
        if (static_cast<size_t>(ch.stage) >= stages.size())
            stages.resize(static_cast<size_t>(ch.stage) + 1);
        stages[static_cast<size_t>(ch.stage)].push_back(signatureOf(ch));
    }
    for (std::vector<std::string> &stage : stages) {
        std::sort(stage.begin(), stage.end());
        sig += "\x1e(";
        for (const std::string &s : stage)
            sig += s + ",";
        sig += ")";
    }
    return sig;
}

struct SvcAgg
{
    std::set<std::string> pods;
    bool isRoot = false;
    bool hasChildren = false;
    std::set<std::string> childServices;
};

struct RpcAgg
{
    /** ln(startKernel) from parent occurrences (pre-children gap). */
    std::vector<double> startLn;
    /** ln(endKernel) from parent occurrences (post-children gap). */
    std::vector<double> endLn;
    /** ln(full duration) from leaf occurrences. */
    std::vector<double> leafLn;
    int64_t maxClientLatencyUs = 0;
    size_t calls = 0;
    size_t exclusiveErrors = 0;
};

struct Aggs
{
    std::map<std::string, SvcAgg> services;
    /** Keyed by service + '\x1f' + rpc (sorts by service, then rpc). */
    std::map<std::string, RpcAgg> rpcs;
    /** ln(one-way hop) pooled over every client<->server gap. */
    std::vector<double> netLn;
};

double
lnUs(int64_t v)
{
    return std::log(static_cast<double>(std::max<int64_t>(v, 1)));
}

void
collect(const CallObs &c, bool isRoot, Aggs &a)
{
    SvcAgg &svc = a.services[c.service];
    if (isRoot)
        svc.isRoot = true;
    if (!c.pod.empty())
        svc.pods.insert(c.pod);

    RpcAgg &rpc = a.rpcs[c.service + "\x1f" + c.rpc];
    ++rpc.calls;
    bool syncChildError = false;
    for (const CallObs &ch : c.children)
        if (!ch.async && ch.clientError)
            syncChildError = true;
    if (c.serverError && !syncChildError)
        ++rpc.exclusiveErrors;
    int64_t lat = c.hasClient ? c.clientEndUs - c.clientStartUs
                              : c.serverEndUs - c.serverStartUs;
    rpc.maxClientLatencyUs = std::max(rpc.maxClientLatencyUs, lat);

    if (c.hasClient) {
        int64_t fwd = c.serverStartUs - c.clientStartUs;
        int64_t back = c.clientEndUs - c.serverEndUs;
        if (fwd >= 0)
            a.netLn.push_back(lnUs(fwd));
        // A timed-out client span ends before its server: skip.
        if (back >= 0)
            a.netLn.push_back(lnUs(back));
    }

    if (c.children.empty()) {
        rpc.leafLn.push_back(lnUs(c.serverEndUs - c.serverStartUs));
    } else {
        svc.hasChildren = true;
        rpc.startLn.push_back(
            lnUs(c.children.front().clientStartUs - c.serverStartUs));
        int64_t lastEnd = 0;
        for (const CallObs &ch : c.children) {
            // An async dispatch returns immediately; only its launch
            // time gates the parent's tail.
            int64_t e = ch.async ? ch.clientStartUs : ch.clientEndUs;
            lastEnd = std::max(lastEnd, e);
            svc.childServices.insert(ch.service);
        }
        if (c.serverEndUs >= lastEnd)
            rpc.endLn.push_back(lnUs(c.serverEndUs - lastEnd));
        for (const CallObs &ch : c.children)
            collect(ch, false, a);
    }
}

KernelConfig
fitKernel(const std::vector<double> &ln, Resource res)
{
    KernelConfig k;
    k.resource = res;
    double mu = 0.0;
    for (double x : ln)
        mu += x;
    mu /= static_cast<double>(ln.size());
    double var = 0.0;
    for (double x : ln)
        var += (x - mu) * (x - mu);
    var /= static_cast<double>(ln.size());
    k.logMu = mu;
    k.logSigma = std::clamp(std::sqrt(var), 0.01, 3.0);
    return k;
}

struct FlowAgg
{
    size_t count = 0;
    int64_t sloUs = 0;
    CallObs rep;
};

int
emitNodes(const CallObs &c, const std::map<std::string, int> &rpcIds,
          FlowConfig &f)
{
    int idx = static_cast<int>(f.nodes.size());
    CallNode nd;
    nd.rpcId = rpcIds.at(c.service + "\x1f" + c.rpc);
    nd.async = c.async;
    nd.stage = c.stage;
    f.nodes.push_back(std::move(nd));
    for (const CallObs &ch : c.children) {
        int cidx = emitNodes(ch, rpcIds, f);
        f.nodes[static_cast<size_t>(idx)].children.push_back(cidx);
    }
    return idx;
}

} // namespace

AppConfig
inferAppModel(const std::vector<trace::Trace> &traces,
              const std::vector<int64_t> &slos, const InferOptions &opts,
              InferStats *stats)
{
    InferStats local;
    InferStats *st = stats ? stats : &local;
    *st = InferStats{};

    Aggs aggs;
    std::map<std::string, FlowAgg> flowAggs;

    for (size_t ti = 0; ti < traces.size(); ++ti) {
        if (opts.maxTraces && st->tracesUsed >= opts.maxTraces)
            break;
        const trace::Trace &t = traces[ti];
        trace::TraceGraph g;
        std::string err;
        if (t.spans.empty() || !trace::TraceGraph::tryBuild(t, &g, &err)) {
            ++st->tracesSkipped;
            continue;
        }

        CallObs root;
        bool ok;
        int rootIdx = g.root();
        const trace::Span &rootSpan = t.spans[static_cast<size_t>(rootIdx)];
        if (isCallerKind(rootSpan.kind)) {
            // Client-side capture: the root is the hop itself.
            int serverIdx = -1;
            for (int gi : g.children(rootIdx))
                if (!isCallerKind(t.spans[static_cast<size_t>(gi)].kind)) {
                    serverIdx = gi;
                    break;
                }
            ok = serverIdx >= 0 && buildCall(t, g, serverIdx, &root);
            if (ok) {
                root.hasClient = true;
                root.async =
                    rootSpan.kind == trace::SpanKind::Producer ||
                    t.spans[static_cast<size_t>(serverIdx)].kind ==
                        trace::SpanKind::Consumer;
                root.clientStartUs = rootSpan.startUs;
                root.clientEndUs = rootSpan.endUs;
                root.clientError = rootSpan.hasError();
            }
        } else {
            ok = buildCall(t, g, rootIdx, &root);
            root.clientStartUs = root.serverStartUs;
            root.clientEndUs = root.serverEndUs;
            root.clientError = root.serverError;
        }
        if (!ok) {
            ++st->tracesSkipped;
            continue;
        }
        ++st->tracesUsed;
        st->spans += t.spans.size();

        collect(root, true, aggs);

        FlowAgg &fa = flowAggs[signatureOf(root)];
        ++fa.count;
        if (ti < slos.size())
            fa.sloUs = std::max(fa.sloUs, slos[ti]);
        if (fa.count == 1)
            fa.rep = std::move(root);
    }

    AppConfig app;
    app.name = opts.name;
    if (st->tracesUsed == 0)
        return app;

    std::map<std::string, int> serviceIds;
    for (const auto &[name, svc] : aggs.services) {
        ServiceConfig s;
        s.id = static_cast<int>(app.services.size());
        s.name = name;
        s.replicas = std::max<int>(1, static_cast<int>(svc.pods.size()));
        app.services.push_back(std::move(s));
        serviceIds[name] = app.services.back().id;
    }
    // Tiers from call-graph position: entry services are Frontend,
    // services that never fan out are Leaf, services whose fanout
    // reaches only Leaf services are Backend, the rest Middleware.
    auto isLeafSvc = [&](const std::string &name) {
        const SvcAgg &svc = aggs.services.at(name);
        return !svc.isRoot && !svc.hasChildren;
    };
    for (ServiceConfig &s : app.services) {
        const SvcAgg &svc = aggs.services.at(s.name);
        if (svc.isRoot) {
            s.tier = Tier::Frontend;
        } else if (!svc.hasChildren) {
            s.tier = Tier::Leaf;
        } else {
            bool allLeaf = true;
            for (const std::string &ch : svc.childServices)
                if (!isLeafSvc(ch))
                    allLeaf = false;
            s.tier = allLeaf ? Tier::Backend : Tier::Middleware;
        }
    }

    std::map<std::string, int> rpcIds;
    for (const auto &[key, agg] : aggs.rpcs) {
        size_t sep = key.find('\x1f');
        RpcConfig r;
        r.id = static_cast<int>(app.rpcs.size());
        r.serviceId = serviceIds.at(key.substr(0, sep));
        r.name = key.substr(sep + 1);
        // Prefer parent-occurrence gap samples: they isolate the
        // start/end kernels, and a leaf occurrence of the same RPC
        // replays as startKernel + endKernel anyway.
        if (!agg.startLn.empty()) {
            r.startKernel = fitKernel(agg.startLn, Resource::Cpu);
            r.endKernel = agg.endLn.empty()
                              ? KernelConfig{Resource::Cpu, 0.0, 0.01}
                              : fitKernel(agg.endLn, Resource::Cpu);
        } else {
            r.startKernel = fitKernel(agg.leafLn, Resource::Cpu);
            // ~1us: keep the leaf's observed total in startKernel.
            r.endKernel = KernelConfig{Resource::Cpu, 0.0, 0.01};
        }
        r.baseErrorProb =
            std::min(0.5, static_cast<double>(agg.exclusiveErrors) /
                              static_cast<double>(agg.calls));
        r.timeoutUs = static_cast<int64_t>(
            opts.timeoutHeadroom *
            static_cast<double>(agg.maxClientLatencyUs));
        app.rpcs.push_back(std::move(r));
        rpcIds[key] = app.rpcs.back().id;
    }

    if (!aggs.netLn.empty())
        app.network = fitKernel(aggs.netLn, Resource::Network);

    // Flows ordered by observed frequency (ties by signature) so the
    // dominant workload shape is flow 0.
    std::vector<const std::pair<const std::string, FlowAgg> *> ordered;
    for (const auto &kv : flowAggs)
        ordered.push_back(&kv);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto *a, const auto *b) {
                  if (a->second.count != b->second.count)
                      return a->second.count > b->second.count;
                  return a->first < b->first;
              });
    for (const auto *kv : ordered) {
        const FlowAgg &fa = kv->second;
        FlowConfig f;
        f.name = fa.rep.service + "." + fa.rep.rpc + "#" +
                 std::to_string(app.flows.size());
        f.weight = static_cast<double>(fa.count) /
                   static_cast<double>(st->tracesUsed);
        f.sloUs = fa.sloUs;
        f.root = emitNodes(fa.rep, rpcIds, f);
        app.flows.push_back(std::move(f));
    }
    st->flowShapes = app.flows.size();

    app.validate();
    return app;
}

AppConfig
inferAppModel(const storage::TraceStore &store,
              const storage::Query &window, const InferOptions &opts,
              InferStats *stats)
{
    std::vector<const storage::Record *> records = store.query(window);
    std::vector<trace::Trace> traces;
    std::vector<int64_t> slos;
    traces.reserve(records.size());
    slos.reserve(records.size());
    for (const storage::Record *r : records) {
        traces.push_back(r->trace());
        slos.push_back(r->sloUs);
    }
    return inferAppModel(traces, slos, opts, stats);
}

} // namespace sleuth::synth
