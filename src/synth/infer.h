#pragma once

/**
 * @file
 * Trace-driven application model inference (ROADMAP item 4).
 *
 * inferAppModel() closes the serving→generation loop: given traces
 * ingested by the serving path (or any OpenTelemetry-shaped corpus),
 * it reconstructs a full AppConfig — services with tiers derived from
 * call-graph position, the RPC dependency graph, operation flows as
 * observed call-tree shapes with sequential/parallel stage structure
 * recovered from child start-time overlap, per-RPC log-normal kernel
 * fits, error rates, timeouts, and the name vocabulary. The result
 * serializes through toJson(AppConfig) and replays through
 * sim::Simulator unmodified, so any captured workload becomes a
 * reproducible benchmark ("profile and clone").
 *
 * Limits: resource labels are not observable in healthy traces, so
 * every inferred kernel is attributed to Cpu except the network hop
 * kernel (fitted from client→server / server→client timestamp gaps).
 * Faults that act on network latency therefore transfer to a clone
 * with full fidelity; resource-specific stress transfers as latency
 * only.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "synth/config.h"
#include "trace/trace.h"

namespace sleuth::storage {
class TraceStore;
struct Query;
} // namespace sleuth::storage

namespace sleuth::synth {

/** Tunables for inferAppModel(). */
struct InferOptions
{
    /** Name given to the inferred AppConfig. */
    std::string name = "inferred";
    /** Cap on traces consumed (0 = all). */
    size_t maxTraces = 0;
    /**
     * Inferred per-RPC timeout = headroom x the largest observed
     * client-side latency, so replayed timeouts fire no more often
     * than observed ones did.
     */
    double timeoutHeadroom = 60.0;
};

/** Accounting of one inference run. */
struct InferStats
{
    /** Traces that contributed observations. */
    size_t tracesUsed = 0;
    /** Traces skipped as malformed (no root, dangling parents, ...). */
    size_t tracesSkipped = 0;
    /** Spans across the used traces. */
    size_t spans = 0;
    /** Distinct call-tree shapes observed (= inferred flows). */
    size_t flowShapes = 0;
};

/**
 * Infer an application model from a trace corpus.
 *
 * @param traces observed traces (healthy traffic gives the best fit)
 * @param slos per-trace latency SLOs, parallel to traces (empty or
 *        shorter = unknown; the max observed SLO per flow shape is
 *        carried into FlowConfig::sloUs)
 * @param opts tunables
 * @param stats optional accounting output
 * @return the inferred model; when no trace is usable the result has
 *         no services and must not be validated or simulated (check
 *         stats->tracesUsed or AppConfig::services.empty())
 */
AppConfig inferAppModel(const std::vector<trace::Trace> &traces,
                        const std::vector<int64_t> &slos = {},
                        const InferOptions &opts = {},
                        InferStats *stats = nullptr);

/**
 * Infer an application model from a trace store. The store is read
 * through its indexed query path, so a half-open time window
 * (Query::minStartUs / maxStartUs) selects the profiling interval;
 * stored per-record SLOs feed the flow SLOs.
 */
AppConfig inferAppModel(const storage::TraceStore &store,
                        const storage::Query &window,
                        const InferOptions &opts = {},
                        InferStats *stats = nullptr);

} // namespace sleuth::synth
