#include "config.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace sleuth::synth {

const char *
toString(Tier tier)
{
    switch (tier) {
      case Tier::Frontend: return "frontend";
      case Tier::Middleware: return "middleware";
      case Tier::Backend: return "backend";
      case Tier::Leaf: return "leaf";
    }
    util::panic("invalid tier");
}

bool
tryTierFromString(const std::string &s, Tier *out)
{
    if (s == "frontend")
        *out = Tier::Frontend;
    else if (s == "middleware")
        *out = Tier::Middleware;
    else if (s == "backend")
        *out = Tier::Backend;
    else if (s == "leaf")
        *out = Tier::Leaf;
    else
        return false;
    return true;
}

Tier
tierFromString(const std::string &s)
{
    Tier tier;
    if (!tryTierFromString(s, &tier))
        util::fatal("unknown tier '", s, "'");
    return tier;
}

const char *
toString(Resource r)
{
    switch (r) {
      case Resource::Cpu: return "cpu";
      case Resource::Memory: return "memory";
      case Resource::Disk: return "disk";
      case Resource::Network: return "network";
    }
    util::panic("invalid resource");
}

bool
tryResourceFromString(const std::string &s, Resource *out)
{
    if (s == "cpu")
        *out = Resource::Cpu;
    else if (s == "memory")
        *out = Resource::Memory;
    else if (s == "disk")
        *out = Resource::Disk;
    else if (s == "network")
        *out = Resource::Network;
    else
        return false;
    return true;
}

Resource
resourceFromString(const std::string &s)
{
    Resource r;
    if (!tryResourceFromString(s, &r))
        util::fatal("unknown resource '", s, "'");
    return r;
}

std::string
AppConfig::validationError() const
{
    std::string prefix = "app '" + name + "': ";
    if (services.empty())
        return prefix + "no services";
    if (rpcs.empty())
        return prefix + "no rpcs";
    if (flows.empty())
        return prefix + "no flows";
    for (size_t i = 0; i < services.size(); ++i) {
        if (services[i].id != static_cast<int>(i))
            return prefix + "service ids must be dense";
        if (services[i].replicas < 1)
            return prefix + "service '" + services[i].name +
                   "' needs >= 1 replica";
    }
    for (size_t i = 0; i < rpcs.size(); ++i) {
        if (rpcs[i].id != static_cast<int>(i))
            return prefix + "rpc ids must be dense";
        if (rpcs[i].serviceId < 0 ||
            rpcs[i].serviceId >= static_cast<int>(services.size()))
            return prefix + "rpc '" + rpcs[i].name +
                   "' references unknown service";
    }
    for (const FlowConfig &f : flows) {
        if (f.nodes.empty())
            return prefix + "flow '" + f.name + "' is empty";
        if (f.root < 0 || f.root >= static_cast<int>(f.nodes.size()))
            return prefix + "flow '" + f.name + "' has invalid root";
        std::vector<int> indegree(f.nodes.size(), 0);
        for (const CallNode &nd : f.nodes) {
            if (nd.rpcId < 0 ||
                nd.rpcId >= static_cast<int>(rpcs.size()))
                return prefix + "flow '" + f.name +
                       "' references unknown rpc";
            for (int c : nd.children) {
                if (c < 0 || c >= static_cast<int>(f.nodes.size()))
                    return prefix + "flow '" + f.name +
                           "' has invalid child index";
                ++indegree[static_cast<size_t>(c)];
            }
        }
        for (size_t i = 0; i < f.nodes.size(); ++i) {
            int expected = static_cast<int>(i) == f.root ? 0 : 1;
            if (indegree[i] != expected)
                return prefix + "flow '" + f.name + "' node " +
                       std::to_string(i) + " has in-degree " +
                       std::to_string(indegree[i]) +
                       " (call trees require " +
                       std::to_string(expected) + ")";
        }
    }
    return {};
}

void
AppConfig::validate() const
{
    std::string err = validationError();
    if (!err.empty())
        util::fatal(err);
}

size_t
AppConfig::maxFlowNodes() const
{
    size_t best = 0;
    for (const FlowConfig &f : flows)
        best = std::max(best, f.nodes.size());
    return best;
}

int
AppConfig::maxFlowDepth() const
{
    int best = 0;
    for (const FlowConfig &f : flows) {
        // Iterative DFS with depths.
        std::vector<std::pair<int, int>> stack = {{f.root, 1}};
        while (!stack.empty()) {
            auto [node, depth] = stack.back();
            stack.pop_back();
            best = std::max(best, depth);
            for (int c : f.nodes[static_cast<size_t>(node)].children)
                stack.emplace_back(c, depth + 1);
        }
    }
    return best;
}

int
AppConfig::maxFanout() const
{
    size_t best = 0;
    for (const FlowConfig &f : flows)
        for (const CallNode &nd : f.nodes)
            best = std::max(best, nd.children.size());
    return static_cast<int>(best);
}

namespace {

util::Json
kernelToJson(const KernelConfig &k)
{
    util::Json j = util::Json::object();
    j.set("resource", toString(k.resource));
    j.set("logMu", k.logMu);
    j.set("logSigma", k.logSigma);
    return j;
}

// Checked JSON access for tryAppFromJson: every getter verifies
// presence and kind, and on failure records a message naming the
// offending field path (e.g. "rpcs[3].startKernel.resource").

std::string
joinPath(const std::string &path, const char *key)
{
    return path.empty() ? std::string(key) : path + "." + key;
}

bool
getField(const util::Json &obj, const std::string &path, const char *key,
         const util::Json **out, std::string *error)
{
    if (obj.type() != util::Json::Type::Object) {
        *error = (path.empty() ? std::string("document") : path) +
                 ": expected an object";
        return false;
    }
    if (!obj.has(key)) {
        *error = joinPath(path, key) + ": missing field";
        return false;
    }
    *out = &obj.at(key);
    return true;
}

bool
getString(const util::Json &obj, const std::string &path, const char *key,
          std::string *out, std::string *error)
{
    const util::Json *f;
    if (!getField(obj, path, key, &f, error))
        return false;
    if (f->type() != util::Json::Type::String) {
        *error = joinPath(path, key) + ": expected a string";
        return false;
    }
    *out = f->asString();
    return true;
}

bool
getNumber(const util::Json &obj, const std::string &path, const char *key,
          double *out, std::string *error)
{
    const util::Json *f;
    if (!getField(obj, path, key, &f, error))
        return false;
    if (f->type() != util::Json::Type::Number) {
        *error = joinPath(path, key) + ": expected a number";
        return false;
    }
    *out = f->asNumber();
    return true;
}

bool
getInt(const util::Json &obj, const std::string &path, const char *key,
       int64_t *out, std::string *error)
{
    double v;
    if (!getNumber(obj, path, key, &v, error))
        return false;
    *out = static_cast<int64_t>(v);
    return true;
}

bool
getBool(const util::Json &obj, const std::string &path, const char *key,
        bool *out, std::string *error)
{
    const util::Json *f;
    if (!getField(obj, path, key, &f, error))
        return false;
    if (f->type() != util::Json::Type::Bool) {
        *error = joinPath(path, key) + ": expected a bool";
        return false;
    }
    *out = f->asBool();
    return true;
}

bool
getArray(const util::Json &obj, const std::string &path, const char *key,
         const util::Json::Array **out, std::string *error)
{
    const util::Json *f;
    if (!getField(obj, path, key, &f, error))
        return false;
    if (f->type() != util::Json::Type::Array) {
        *error = joinPath(path, key) + ": expected an array";
        return false;
    }
    *out = &f->asArray();
    return true;
}

bool
tryKernelFromJson(const util::Json &j, const std::string &path,
                  KernelConfig *k, std::string *error)
{
    std::string res;
    if (!getString(j, path, "resource", &res, error))
        return false;
    if (!tryResourceFromString(res, &k->resource)) {
        *error = joinPath(path, "resource") + ": unknown resource '" +
                 res + "'";
        return false;
    }
    return getNumber(j, path, "logMu", &k->logMu, error) &&
           getNumber(j, path, "logSigma", &k->logSigma, error);
}

} // namespace

util::Json
toJson(const AppConfig &app)
{
    util::Json doc = util::Json::object();
    doc.set("name", app.name);
    doc.set("network", kernelToJson(app.network));

    util::Json services = util::Json::array();
    for (const ServiceConfig &s : app.services) {
        util::Json j = util::Json::object();
        j.set("id", s.id);
        j.set("name", s.name);
        j.set("tier", toString(s.tier));
        j.set("replicas", s.replicas);
        services.push(std::move(j));
    }
    doc.set("services", std::move(services));

    util::Json rpcs = util::Json::array();
    for (const RpcConfig &r : app.rpcs) {
        util::Json j = util::Json::object();
        j.set("id", r.id);
        j.set("serviceId", r.serviceId);
        j.set("name", r.name);
        j.set("startKernel", kernelToJson(r.startKernel));
        j.set("endKernel", kernelToJson(r.endKernel));
        j.set("baseErrorProb", r.baseErrorProb);
        j.set("timeoutUs", r.timeoutUs);
        rpcs.push(std::move(j));
    }
    doc.set("rpcs", std::move(rpcs));

    util::Json flows = util::Json::array();
    for (const FlowConfig &f : app.flows) {
        util::Json j = util::Json::object();
        j.set("name", f.name);
        j.set("root", f.root);
        j.set("weight", f.weight);
        j.set("sloUs", f.sloUs);
        util::Json nodes = util::Json::array();
        for (const CallNode &nd : f.nodes) {
            util::Json nj = util::Json::object();
            nj.set("rpcId", nd.rpcId);
            nj.set("async", nd.async);
            nj.set("stage", nd.stage);
            util::Json kids = util::Json::array();
            for (int c : nd.children)
                kids.push(c);
            nj.set("children", std::move(kids));
            nodes.push(std::move(nj));
        }
        j.set("nodes", std::move(nodes));
        flows.push(std::move(j));
    }
    doc.set("flows", std::move(flows));
    return doc;
}

bool
tryAppFromJson(const util::Json &doc, AppConfig *out, std::string *error)
{
    std::string scratch;
    std::string *e = error ? error : &scratch;

    AppConfig app;
    if (!getString(doc, "", "name", &app.name, e))
        return false;
    const util::Json *net;
    if (!getField(doc, "", "network", &net, e))
        return false;
    if (!tryKernelFromJson(*net, "network", &app.network, e))
        return false;

    const util::Json::Array *services;
    if (!getArray(doc, "", "services", &services, e))
        return false;
    for (size_t i = 0; i < services->size(); ++i) {
        const util::Json &j = (*services)[i];
        std::string path = "services[" + std::to_string(i) + "]";
        ServiceConfig s;
        int64_t v;
        if (!getInt(j, path, "id", &v, e))
            return false;
        s.id = static_cast<int>(v);
        if (!getString(j, path, "name", &s.name, e))
            return false;
        std::string tier;
        if (!getString(j, path, "tier", &tier, e))
            return false;
        if (!tryTierFromString(tier, &s.tier)) {
            *e = path + ".tier: unknown tier '" + tier + "'";
            return false;
        }
        if (!getInt(j, path, "replicas", &v, e))
            return false;
        s.replicas = static_cast<int>(v);
        app.services.push_back(std::move(s));
    }

    const util::Json::Array *rpcs;
    if (!getArray(doc, "", "rpcs", &rpcs, e))
        return false;
    for (size_t i = 0; i < rpcs->size(); ++i) {
        const util::Json &j = (*rpcs)[i];
        std::string path = "rpcs[" + std::to_string(i) + "]";
        RpcConfig r;
        int64_t v;
        if (!getInt(j, path, "id", &v, e))
            return false;
        r.id = static_cast<int>(v);
        if (!getInt(j, path, "serviceId", &v, e))
            return false;
        r.serviceId = static_cast<int>(v);
        if (!getString(j, path, "name", &r.name, e))
            return false;
        const util::Json *k;
        if (!getField(j, path, "startKernel", &k, e) ||
            !tryKernelFromJson(*k, path + ".startKernel", &r.startKernel,
                               e))
            return false;
        if (!getField(j, path, "endKernel", &k, e) ||
            !tryKernelFromJson(*k, path + ".endKernel", &r.endKernel, e))
            return false;
        if (!getNumber(j, path, "baseErrorProb", &r.baseErrorProb, e))
            return false;
        if (!getInt(j, path, "timeoutUs", &r.timeoutUs, e))
            return false;
        app.rpcs.push_back(std::move(r));
    }

    const util::Json::Array *flows;
    if (!getArray(doc, "", "flows", &flows, e))
        return false;
    for (size_t i = 0; i < flows->size(); ++i) {
        const util::Json &j = (*flows)[i];
        std::string path = "flows[" + std::to_string(i) + "]";
        FlowConfig f;
        int64_t v;
        if (!getString(j, path, "name", &f.name, e))
            return false;
        if (!getInt(j, path, "root", &v, e))
            return false;
        f.root = static_cast<int>(v);
        if (!getNumber(j, path, "weight", &f.weight, e))
            return false;
        if (!getInt(j, path, "sloUs", &f.sloUs, e))
            return false;
        const util::Json::Array *nodes;
        if (!getArray(j, path, "nodes", &nodes, e))
            return false;
        for (size_t n = 0; n < nodes->size(); ++n) {
            const util::Json &nj = (*nodes)[n];
            std::string npath = path + ".nodes[" + std::to_string(n) +
                                "]";
            CallNode nd;
            if (!getInt(nj, npath, "rpcId", &v, e))
                return false;
            nd.rpcId = static_cast<int>(v);
            if (!getBool(nj, npath, "async", &nd.async, e))
                return false;
            if (!getInt(nj, npath, "stage", &v, e))
                return false;
            nd.stage = static_cast<int>(v);
            const util::Json::Array *kids;
            if (!getArray(nj, npath, "children", &kids, e))
                return false;
            for (size_t c = 0; c < kids->size(); ++c) {
                if ((*kids)[c].type() != util::Json::Type::Number) {
                    *e = npath + ".children[" + std::to_string(c) +
                         "]: expected a number";
                    return false;
                }
                nd.children.push_back(
                    static_cast<int>((*kids)[c].asInt()));
            }
            f.nodes.push_back(std::move(nd));
        }
        app.flows.push_back(std::move(f));
    }

    *e = app.validationError();
    if (!e->empty())
        return false;
    *out = std::move(app);
    return true;
}

AppConfig
appFromJson(const util::Json &doc)
{
    AppConfig app;
    std::string error;
    if (!tryAppFromJson(doc, &app, &error))
        util::fatal(error);
    return app;
}

} // namespace sleuth::synth
