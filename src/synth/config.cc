#include "config.h"

#include <algorithm>
#include <functional>

#include "util/logging.h"

namespace sleuth::synth {

const char *
toString(Tier tier)
{
    switch (tier) {
      case Tier::Frontend: return "frontend";
      case Tier::Middleware: return "middleware";
      case Tier::Backend: return "backend";
      case Tier::Leaf: return "leaf";
    }
    util::panic("invalid tier");
}

Tier
tierFromString(const std::string &s)
{
    if (s == "frontend")
        return Tier::Frontend;
    if (s == "middleware")
        return Tier::Middleware;
    if (s == "backend")
        return Tier::Backend;
    if (s == "leaf")
        return Tier::Leaf;
    util::fatal("unknown tier '", s, "'");
}

const char *
toString(Resource r)
{
    switch (r) {
      case Resource::Cpu: return "cpu";
      case Resource::Memory: return "memory";
      case Resource::Disk: return "disk";
      case Resource::Network: return "network";
    }
    util::panic("invalid resource");
}

Resource
resourceFromString(const std::string &s)
{
    if (s == "cpu")
        return Resource::Cpu;
    if (s == "memory")
        return Resource::Memory;
    if (s == "disk")
        return Resource::Disk;
    if (s == "network")
        return Resource::Network;
    util::fatal("unknown resource '", s, "'");
}

void
AppConfig::validate() const
{
    if (services.empty())
        util::fatal("app '", name, "': no services");
    if (rpcs.empty())
        util::fatal("app '", name, "': no rpcs");
    if (flows.empty())
        util::fatal("app '", name, "': no flows");
    for (size_t i = 0; i < services.size(); ++i) {
        if (services[i].id != static_cast<int>(i))
            util::fatal("app '", name, "': service ids must be dense");
        if (services[i].replicas < 1)
            util::fatal("app '", name, "': service '", services[i].name,
                        "' needs >= 1 replica");
    }
    for (size_t i = 0; i < rpcs.size(); ++i) {
        if (rpcs[i].id != static_cast<int>(i))
            util::fatal("app '", name, "': rpc ids must be dense");
        if (rpcs[i].serviceId < 0 ||
            rpcs[i].serviceId >= static_cast<int>(services.size()))
            util::fatal("app '", name, "': rpc '", rpcs[i].name,
                        "' references unknown service");
    }
    for (const FlowConfig &f : flows) {
        if (f.nodes.empty())
            util::fatal("app '", name, "': flow '", f.name, "' is empty");
        if (f.root < 0 || f.root >= static_cast<int>(f.nodes.size()))
            util::fatal("app '", name, "': flow '", f.name,
                        "' has invalid root");
        std::vector<int> indegree(f.nodes.size(), 0);
        for (const CallNode &nd : f.nodes) {
            if (nd.rpcId < 0 ||
                nd.rpcId >= static_cast<int>(rpcs.size()))
                util::fatal("app '", name, "': flow '", f.name,
                            "' references unknown rpc");
            for (int c : nd.children) {
                if (c < 0 || c >= static_cast<int>(f.nodes.size()))
                    util::fatal("app '", name, "': flow '", f.name,
                                "' has invalid child index");
                ++indegree[static_cast<size_t>(c)];
            }
        }
        for (size_t i = 0; i < f.nodes.size(); ++i) {
            int expected = static_cast<int>(i) == f.root ? 0 : 1;
            if (indegree[i] != expected)
                util::fatal("app '", name, "': flow '", f.name,
                            "' node ", i, " has in-degree ", indegree[i],
                            " (call trees require ", expected, ")");
        }
    }
}

size_t
AppConfig::maxFlowNodes() const
{
    size_t best = 0;
    for (const FlowConfig &f : flows)
        best = std::max(best, f.nodes.size());
    return best;
}

int
AppConfig::maxFlowDepth() const
{
    int best = 0;
    for (const FlowConfig &f : flows) {
        // Iterative DFS with depths.
        std::vector<std::pair<int, int>> stack = {{f.root, 1}};
        while (!stack.empty()) {
            auto [node, depth] = stack.back();
            stack.pop_back();
            best = std::max(best, depth);
            for (int c : f.nodes[static_cast<size_t>(node)].children)
                stack.emplace_back(c, depth + 1);
        }
    }
    return best;
}

int
AppConfig::maxFanout() const
{
    size_t best = 0;
    for (const FlowConfig &f : flows)
        for (const CallNode &nd : f.nodes)
            best = std::max(best, nd.children.size());
    return static_cast<int>(best);
}

namespace {

util::Json
kernelToJson(const KernelConfig &k)
{
    util::Json j = util::Json::object();
    j.set("resource", toString(k.resource));
    j.set("logMu", k.logMu);
    j.set("logSigma", k.logSigma);
    return j;
}

KernelConfig
kernelFromJson(const util::Json &j)
{
    KernelConfig k;
    k.resource = resourceFromString(j.at("resource").asString());
    k.logMu = j.at("logMu").asNumber();
    k.logSigma = j.at("logSigma").asNumber();
    return k;
}

} // namespace

util::Json
toJson(const AppConfig &app)
{
    util::Json doc = util::Json::object();
    doc.set("name", app.name);
    doc.set("network", kernelToJson(app.network));

    util::Json services = util::Json::array();
    for (const ServiceConfig &s : app.services) {
        util::Json j = util::Json::object();
        j.set("id", s.id);
        j.set("name", s.name);
        j.set("tier", toString(s.tier));
        j.set("replicas", s.replicas);
        services.push(std::move(j));
    }
    doc.set("services", std::move(services));

    util::Json rpcs = util::Json::array();
    for (const RpcConfig &r : app.rpcs) {
        util::Json j = util::Json::object();
        j.set("id", r.id);
        j.set("serviceId", r.serviceId);
        j.set("name", r.name);
        j.set("startKernel", kernelToJson(r.startKernel));
        j.set("endKernel", kernelToJson(r.endKernel));
        j.set("baseErrorProb", r.baseErrorProb);
        j.set("timeoutUs", r.timeoutUs);
        rpcs.push(std::move(j));
    }
    doc.set("rpcs", std::move(rpcs));

    util::Json flows = util::Json::array();
    for (const FlowConfig &f : app.flows) {
        util::Json j = util::Json::object();
        j.set("name", f.name);
        j.set("root", f.root);
        j.set("weight", f.weight);
        j.set("sloUs", f.sloUs);
        util::Json nodes = util::Json::array();
        for (const CallNode &nd : f.nodes) {
            util::Json nj = util::Json::object();
            nj.set("rpcId", nd.rpcId);
            nj.set("async", nd.async);
            nj.set("stage", nd.stage);
            util::Json kids = util::Json::array();
            for (int c : nd.children)
                kids.push(c);
            nj.set("children", std::move(kids));
            nodes.push(std::move(nj));
        }
        j.set("nodes", std::move(nodes));
        flows.push(std::move(j));
    }
    doc.set("flows", std::move(flows));
    return doc;
}

AppConfig
appFromJson(const util::Json &doc)
{
    AppConfig app;
    app.name = doc.at("name").asString();
    app.network = kernelFromJson(doc.at("network"));
    for (const util::Json &j : doc.at("services").asArray()) {
        ServiceConfig s;
        s.id = static_cast<int>(j.at("id").asInt());
        s.name = j.at("name").asString();
        s.tier = tierFromString(j.at("tier").asString());
        s.replicas = static_cast<int>(j.at("replicas").asInt());
        app.services.push_back(std::move(s));
    }
    for (const util::Json &j : doc.at("rpcs").asArray()) {
        RpcConfig r;
        r.id = static_cast<int>(j.at("id").asInt());
        r.serviceId = static_cast<int>(j.at("serviceId").asInt());
        r.name = j.at("name").asString();
        r.startKernel = kernelFromJson(j.at("startKernel"));
        r.endKernel = kernelFromJson(j.at("endKernel"));
        r.baseErrorProb = j.at("baseErrorProb").asNumber();
        r.timeoutUs = j.at("timeoutUs").asInt();
        app.rpcs.push_back(std::move(r));
    }
    for (const util::Json &j : doc.at("flows").asArray()) {
        FlowConfig f;
        f.name = j.at("name").asString();
        f.root = static_cast<int>(j.at("root").asInt());
        f.weight = j.at("weight").asNumber();
        f.sloUs = j.at("sloUs").asInt();
        for (const util::Json &nj : j.at("nodes").asArray()) {
            CallNode nd;
            nd.rpcId = static_cast<int>(nj.at("rpcId").asInt());
            nd.async = nj.at("async").asBool();
            nd.stage = static_cast<int>(nj.at("stage").asInt());
            for (const util::Json &c : nj.at("children").asArray())
                nd.children.push_back(static_cast<int>(c.asInt()));
            f.nodes.push_back(std::move(nd));
        }
        app.flows.push_back(std::move(f));
    }
    app.validate();
    return app;
}

} // namespace sleuth::synth
