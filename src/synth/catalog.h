#pragma once

/**
 * @file
 * Hand-written application models of the open-source benchmarks the
 * paper evaluates (§6.1.1): SockShop (11 services, 58 RPCs, POST /orders
 * reaching 57 spans at depth 9) and DeathStarBench SocialNetwork
 * (26 services, 61 RPCs, ComposePost reaching 31 spans at depth 9).
 * The topologies approximate the real applications' RPC dependency
 * graphs; the simulator executes them exactly like generated apps.
 */

#include "synth/config.h"

namespace sleuth::synth {

/** The SockShop demo application model. */
AppConfig sockShopConfig();

/** The DeathStarBench SocialNetwork application model. */
AppConfig socialNetworkConfig();

} // namespace sleuth::synth
